//! The chase procedure (Definition 6 of the paper).
//!
//! `Ch_0(T,D) = D`; `Ch_{i+1}(T,D)` extends `Ch_i(T,D)` with `appl(ρ,σ)`
//! for **every** rule `ρ` and every homomorphism `σ` of its body into
//! `Ch_i(T,D)` — rounds are "parallel": facts produced in round `i+1` never
//! feed triggers of round `i+1`.
//!
//! The default engine is *semi-naive*: a trigger is enumerated in round
//! `i+1` only if it uses at least one fact (or, for `dom`-scoped variables
//! and ground `dom` atoms, one domain term) that first appeared in round
//! `i`. Triggers using only older facts already fired in an earlier round,
//! so the produced fact sets `Ch_i` are exactly those of the textbook
//! definition; [`chase_naive`] re-enumerates everything each round and is
//! used to cross-check this.
//!
//! The hot path is compiled per run: each rule gets one [`JoinPlan`] per
//! enumeration path (per forced body atom), the per-round delta is tracked
//! as contiguous fact/term index ranges plus a per-predicate index, and a
//! trigger using several round-`i` delta elements is processed exactly once
//! — only when it arrives via its *first* delta body atom (paths are
//! ordered; later paths skip triggers an earlier path already covers), so
//! no per-trigger hashing or allocation is needed. Every run also fills a
//! [`ChaseStats`] for observability.
//!
//! Enumeration is organised as per-round *tasks* (one chunk of one
//! enumeration path of one rule) evaluated against the immutable prefix
//! `Ch_{i-1}` on a [`qr_exec::Executor`], with task outputs merged in
//! submission order — so [`chase_with`] on any thread count produces the
//! same facts, term indices, provenance trails, and trigger counts as the
//! sequential engine, bit for bit.

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::time::Instant;

use qr_exec::Executor;
use qr_hom::matcher::{Assignment, JoinPlan, MatchCounters};
use qr_syntax::query::{QAtom, QTerm, Var};
use qr_syntax::{Fact, FactIdx, FactRef, Instance, InstanceSnapshot, Pred, TermId, Theory};

use crate::skolem::SkolemizedRule;
use crate::stats::{ChaseStats, RoundStats};

/// Resource limits for a chase run.
#[derive(Clone, Copy, Debug)]
pub struct ChaseBudget {
    /// Maximum number of rounds (`Ch_max_rounds` is the deepest prefix built).
    pub max_rounds: usize,
    /// Stop after a round if the instance exceeds this many facts.
    pub max_facts: usize,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_rounds: 24,
            max_facts: 200_000,
        }
    }
}

impl ChaseBudget {
    /// A budget bounded only by the number of rounds (plus a generous fact cap).
    pub fn rounds(max_rounds: usize) -> ChaseBudget {
        ChaseBudget {
            max_rounds,
            ..ChaseBudget::default()
        }
    }
}

/// Whether the chase reached a fixpoint or ran out of budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// A round added no facts: the instance **is** `Ch(T,D)` (the chase
    /// all-instances-terminated on this input).
    Fixpoint,
    /// The budget was exhausted; the instance is the prefix `Ch_rounds(T,D)`.
    Exhausted,
}

/// Provenance of one derived fact: which rule fired, on which body image.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Derivation {
    /// Index of the rule in the theory.
    pub rule: usize,
    /// Indices (into the chase instance) of the non-builtin body facts,
    /// one per regular body atom of the rule (total: recording never drops
    /// an index).
    pub trigger: Vec<FactIdx>,
    /// The frontier image `σ(fr(ρ))` (Observation 9) in canonical order.
    pub frontier: Vec<TermId>,
    /// The round in which the fact was added.
    pub round: usize,
}

/// The result of a chase run: the instance `Ch_rounds(T,D)` with per-fact
/// round and provenance information.
#[derive(Clone, Debug)]
pub struct Chase {
    /// All facts derived (a superset of the input instance).
    pub instance: Instance,
    /// For each fact index, the round it first appeared in (0 = input).
    pub round_of: Vec<usize>,
    /// Number of completed rounds: `instance = Ch_rounds(T,D)`.
    pub rounds: usize,
    /// Fixpoint or budget exhaustion.
    pub outcome: ChaseOutcome,
    /// For each fact index, its first derivation (`None` for input facts).
    pub derivations: Vec<Option<Derivation>>,
    /// With [`chase_all`], **every** distinct derivation of each fact:
    /// semi-naive evaluation visits each trigger in exactly one round via
    /// exactly one enumeration path, and assignments that collapse to the
    /// same `(rule, trigger, frontier)` are deduplicated within the round,
    /// so each distinct derivation appears exactly once. Empty in normal
    /// mode.
    pub all_derivations: Vec<Vec<Derivation>>,
    /// Per-round engine counters (triggers, matcher work, growth, time).
    pub stats: ChaseStats,
    /// O(1) instance snapshots taken after the input load (index 0) and
    /// after each completed round, powering the cheap [`Chase::prefix`].
    pub round_snapshots: Vec<InstanceSnapshot>,
}

impl Chase {
    /// The prefix `Ch_n(T,D)`: facts added in rounds `0..=n`. Built by
    /// truncating to the end-of-round snapshot — O(suffix dropped), not a
    /// full O(n) re-index — and bit-identical (fact stream, indices,
    /// domain, stats) to an instance freshly built from those facts.
    pub fn prefix(&self, n: usize) -> Instance {
        if n >= self.rounds {
            return self.instance.clone();
        }
        self.instance.truncated(&self.round_snapshots[n])
    }

    /// Facts first appearing in round `n`. Rounds own contiguous index
    /// ranges delimited by the end-of-round snapshots, so this slices
    /// directly — O(|delta|), not a full instance scan.
    pub fn delta(&self, n: usize) -> Vec<FactRef<'_>> {
        let Some(range) = self.delta_range(n) else {
            return Vec::new();
        };
        range.map(|i| self.instance.fact(i)).collect()
    }

    /// The contiguous fact-index range of round `n`'s delta (`None` past
    /// the last completed round). Round 0 is the loaded input.
    pub fn delta_range(&self, n: usize) -> Option<Range<FactIdx>> {
        let end = self.round_snapshots.get(n)?.facts();
        let start = if n == 0 {
            0
        } else {
            self.round_snapshots[n - 1].facts()
        };
        Some(start..end)
    }

    /// `true` iff the chase reached a fixpoint within budget.
    pub fn terminated(&self) -> bool {
        self.outcome == ChaseOutcome::Fixpoint
    }

    /// The round in which each term first entered the active domain
    /// (0 for input constants) — the clock behind Exercise 17's `n_at`.
    /// The domain is append-only and recorded in first-occurrence order,
    /// so the end-of-round snapshot domain boundaries partition it by
    /// first round: one pass over the domain, no per-fact rescan.
    pub fn first_round_of_terms(&self) -> HashMap<TermId, usize> {
        let domain = self.instance.domain();
        let mut out: HashMap<TermId, usize> = HashMap::with_capacity(domain.len());
        let mut lo = 0;
        for (round, snap) in self.round_snapshots.iter().enumerate() {
            for &t in &domain[lo..snap.terms()] {
                out.insert(t, round);
            }
            lo = snap.terms();
        }
        debug_assert_eq!(lo, domain.len(), "snapshots cover the whole domain");
        out
    }
}

/// A rule compiled for the chase loop: Skolemization, the split of the
/// body into regular / `dom` atoms, and one pre-compiled [`JoinPlan`] per
/// semi-naive enumeration path (built once per run, not once per trigger).
pub(crate) struct RulePlan<'a> {
    pub(crate) rule: &'a qr_syntax::Tgd,
    pub(crate) skolemized: SkolemizedRule,
    /// Indices of non-dom body atoms.
    pub(crate) regular: Vec<usize>,
    /// `dom` atoms whose argument is a variable: `(body index, var)`.
    pub(crate) dom_var: Vec<(usize, Var)>,
    /// Per dom-var atom: every `(pred, position)` at which that variable
    /// also occurs in a regular body atom. A new term can only match the
    /// sweep if it occurs at all of these positions within the fact delta
    /// (new terms occur in delta facts only), so the per-round occurrence
    /// index prunes the term sweep without changing which triggers exist.
    dom_var_keys: Vec<Vec<(Pred, u32)>>,
    /// Ground `dom` atoms: `(body index, constant term)`.
    pub(crate) dom_ground: Vec<(usize, TermId)>,
    /// For each body index, its position in `regular` (None for dom atoms);
    /// maps match-trail entries to trigger slots.
    pub(crate) reg_pos: Vec<Option<usize>>,
    /// The whole body (naive mode; empty-body rules).
    full: JoinPlan,
    /// Per regular atom `k`: the body minus atom `k`, compiled with atom
    /// `k`'s variables assumed bound (they come from the forced delta fact).
    pub(crate) by_regular: Vec<JoinPlan>,
    /// Per dom-var atom: the body minus that atom, with its variable bound.
    pub(crate) by_dom_var: Vec<JoinPlan>,
    /// Per ground-dom atom: the body minus that atom (the constant's
    /// delta-ness is checked outside the matcher).
    pub(crate) by_dom_ground: Vec<JoinPlan>,
}

pub(crate) fn plans(theory: &Theory) -> Vec<RulePlan<'_>> {
    theory
        .rules()
        .iter()
        .map(|rule| {
            let body = rule.body();
            let nvars = rule.var_names().len();
            let mut regular = Vec::new();
            let mut dom_var = Vec::new();
            let mut dom_ground = Vec::new();
            let mut reg_pos = vec![None; body.len()];
            for (i, atom) in body.iter().enumerate() {
                if !atom.pred.is_dom() {
                    reg_pos[i] = Some(regular.len());
                    regular.push(i);
                } else {
                    match atom.args[0] {
                        QTerm::Var(v) => dom_var.push((i, v)),
                        QTerm::Const(c) => dom_ground.push((i, TermId::constant(c))),
                    }
                }
            }
            let rest_of = |skip: usize| -> Vec<QAtom> {
                body.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != skip)
                    .map(|(_, a)| a.clone())
                    .collect()
            };
            let by_regular = regular
                .iter()
                .map(|&k| {
                    let bound: Vec<Var> = body[k].vars().collect();
                    JoinPlan::compile(rest_of(k), nvars, &bound)
                })
                .collect();
            let by_dom_var = dom_var
                .iter()
                .map(|&(k, v)| JoinPlan::compile(rest_of(k), nvars, &[v]))
                .collect();
            let by_dom_ground = dom_ground
                .iter()
                .map(|&(k, _)| JoinPlan::compile(rest_of(k), nvars, &[]))
                .collect();
            let dom_var_keys = dom_var
                .iter()
                .map(|&(_, v)| {
                    let mut keys = Vec::new();
                    for &bj in &regular {
                        for (pos, arg) in body[bj].args.iter().enumerate() {
                            if *arg == QTerm::Var(v) {
                                keys.push((body[bj].pred, pos as u32));
                            }
                        }
                    }
                    keys
                })
                .collect();
            RulePlan {
                rule,
                skolemized: SkolemizedRule::new(rule),
                regular,
                dom_var,
                dom_var_keys,
                dom_ground,
                reg_pos,
                full: JoinPlan::compile(body.to_vec(), nvars, &[]),
                by_regular,
                by_dom_var,
                by_dom_ground,
            }
        })
        .collect()
}

/// Attempts to unify body atom `atom` with ground fact `fact`, extending
/// `out` with variable bindings. Returns `false` on clash.
pub(crate) fn unify_atom_fact(
    atom: &QAtom,
    fact: FactRef<'_>,
    out: &mut Vec<(Var, TermId)>,
) -> bool {
    let start = out.len();
    for (pos, t) in atom.args.iter().enumerate() {
        let ft = fact.args[pos];
        match t {
            QTerm::Const(c) => {
                if TermId::constant(*c) != ft {
                    out.truncate(start);
                    return false;
                }
            }
            QTerm::Var(v) => match out.iter().find(|(u, _)| u == v) {
                Some((_, bound)) if *bound != ft => {
                    out.truncate(start);
                    return false;
                }
                Some(_) => {}
                None => out.push((*v, ft)),
            },
        }
    }
    true
}

/// Runs the semi-naive chase (sequentially; see [`chase_with`]).
pub fn chase(theory: &Theory, db: &Instance, budget: ChaseBudget) -> Chase {
    chase_with(theory, db, budget, &Executor::sequential())
}

/// Runs the semi-naive chase with round tasks scheduled on `exec`. The
/// result is identical to [`chase`] for every thread count — parallelism
/// only changes wall time, never output.
pub fn chase_with(theory: &Theory, db: &Instance, budget: ChaseBudget, exec: &Executor) -> Chase {
    run_chase(theory, db, budget, true, false, exec)
}

/// Runs the naive chase (re-enumerates all triggers each round). Used to
/// validate the semi-naive engine; produces identical `Ch_i` sets.
pub fn chase_naive(theory: &Theory, db: &Instance, budget: ChaseBudget) -> Chase {
    chase_naive_with(theory, db, budget, &Executor::sequential())
}

/// Naive chase on an explicit executor (whole-rule tasks).
pub fn chase_naive_with(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
) -> Chase {
    run_chase(theory, db, budget, false, false, exec)
}

/// Runs the semi-naive chase recording **all** derivations of every fact
/// (needed to quantify over the paper's ancestor functions, Appendix A —
/// e.g. the worst-case ancestor sets of Example 66).
pub fn chase_all(theory: &Theory, db: &Instance, budget: ChaseBudget) -> Chase {
    chase_all_with(theory, db, budget, &Executor::sequential())
}

/// All-derivations chase on an explicit executor.
pub fn chase_all_with(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
) -> Chase {
    run_chase(theory, db, budget, true, true, exec)
}

/// Which semi-naive enumeration path produced a body match. Paths are
/// ordered (regular atoms by body position, then dom-var atoms, then
/// ground-dom atoms); a trigger is processed only when it arrives via its
/// *first* delta body atom, so multi-delta triggers are handled exactly
/// once per round with no hashing.
#[derive(Clone, Copy)]
enum Path {
    /// The whole body (naive mode / empty bodies): every match is unique.
    Full,
    /// Regular atom at position `k` of `RulePlan::regular` was forced onto
    /// the fact delta; the forced fact's index rides along.
    Regular(usize, FactIdx),
    /// Dom-var atom at position `k` of `RulePlan::dom_var` was forced onto
    /// the term delta.
    DomVar(usize),
    /// Ground-dom atom at position `k` of `RulePlan::dom_ground` joined
    /// the delta (its constant is new).
    DomGround(usize),
}

/// The previous round's delta, for canonical-path checks: facts with index
/// `>= fact_start` and terms in `new_terms` are new.
struct DeltaCtx {
    fact_start: FactIdx,
    new_terms: HashSet<TermId>,
}

/// One unit of per-round enumeration work. Tasks are generated in exactly
/// the order the sequential engine visits the corresponding work (rules in
/// theory order; per rule: regular paths, dom-var paths, ground-dom paths,
/// empty bodies), with long delta scans split into contiguous chunks, so
/// merging task outputs in submission order replays the sequential run.
#[derive(Clone, Copy)]
enum RoundTask {
    /// Force regular atom `k` of rule `ridx` onto `lo..hi` of that
    /// predicate's fact delta.
    Regular {
        ridx: usize,
        k: usize,
        lo: usize,
        hi: usize,
    },
    /// Force dom-var atom `k` of rule `ridx` onto `lo..hi` of the term
    /// delta.
    DomVar {
        ridx: usize,
        k: usize,
        lo: usize,
        hi: usize,
    },
    /// Ground-dom atom `k` of rule `ridx` (its constant just arrived).
    DomGround { ridx: usize, k: usize },
    /// Rule `ridx` has an empty body (fires in round 1 only).
    EmptyBody { ridx: usize },
    /// Naive mode: enumerate the whole body of rule `ridx`.
    FullRule { ridx: usize },
}

/// Everything a round task reads: the compiled plans and the immutable
/// round prefix with its delta indexes. Shared by all worker threads.
struct RoundCtx<'a> {
    plans: &'a [RulePlan<'a>],
    instance: &'a Instance,
    delta: &'a DeltaCtx,
    delta_by_pred: &'a HashMap<Pred, Vec<FactIdx>>,
    delta_terms: &'a [TermId],
    /// Dom-sweep locality index: the new terms occurring at each
    /// `(pred, position)` of the fact delta. New terms occur in delta
    /// facts only, so this is a complete filter for the positions in
    /// [`RulePlan::dom_var_keys`].
    delta_occ: &'a HashMap<(Pred, u32), HashSet<TermId>>,
    record_all: bool,
}

/// One staged rule application: the canonical trigger, its frontier image,
/// and the produced head facts (in head-atom order) split by membership in
/// the immutable prefix.
struct StagedEvent {
    rule: usize,
    trigger: Vec<FactIdx>,
    frontier: Vec<TermId>,
    /// Head facts not in the prefix (normal mode: also deduplicated
    /// against this task's earlier events).
    fresh: Vec<Fact>,
    /// `record_all`: prefix indices of head facts that already exist.
    existing: Vec<FactIdx>,
}

/// Worker-local buffers for one round task.
struct TaskBuf {
    events: Vec<StagedEvent>,
    /// Normal mode: facts staged by this task, for intra-task dedup.
    fresh_set: HashSet<Fact>,
    /// `record_all`: derivation keys staged by this task — an intra-task
    /// pre-filter for the merge's global dedup (two assignments differing
    /// only on a non-frontier dom variable collapse to one key).
    seen_derivs: HashSet<(usize, Vec<FactIdx>, Vec<TermId>)>,
    /// Scratch: the current trigger, one slot per regular body atom.
    trigger_buf: Vec<FactIdx>,
    /// Scratch: the current frontier image.
    frontier_buf: Vec<TermId>,
    /// Triggers enumerated (complete body matches, pre-dedup).
    triggers: u64,
}

impl TaskBuf {
    fn new() -> TaskBuf {
        TaskBuf {
            events: Vec::new(),
            fresh_set: HashSet::new(),
            seen_derivs: HashSet::new(),
            trigger_buf: Vec::new(),
            frontier_buf: Vec::new(),
            triggers: 0,
        }
    }
}

/// The output of one round task, merged in submission order.
struct TaskOut {
    events: Vec<StagedEvent>,
    triggers: u64,
    candidates: u64,
    dom_sweeps: u64,
    dom_pruned: u64,
}

/// Runs one enumeration task against the immutable round prefix.
fn run_task(ctx: &RoundCtx<'_>, task: RoundTask) -> TaskOut {
    let mut buf = TaskBuf::new();
    let mut counters = MatchCounters::default();
    let mut dom_sweeps = 0u64;
    let mut dom_pruned = 0u64;
    match task {
        RoundTask::Regular { ridx, k, lo, hi } => {
            let plan = &ctx.plans[ridx];
            let atom = &plan.rule.body()[plan.regular[k]];
            let rest = &plan.by_regular[k];
            let mut fixed = Vec::new();
            for &fi in &ctx.delta_by_pred[&atom.pred][lo..hi] {
                counters.candidates += 1;
                fixed.clear();
                if !unify_atom_fact(atom, ctx.instance.fact(fi), &mut fixed) {
                    continue;
                }
                rest.for_each_match_with_facts(
                    ctx.instance,
                    &fixed,
                    &mut counters,
                    |asg, trail| {
                        emit(plan, ridx, asg, trail, Path::Regular(k, fi), ctx, &mut buf);
                        true
                    },
                );
            }
        }
        RoundTask::DomVar { ridx, k, lo, hi } => {
            let plan = &ctx.plans[ridx];
            let (_, v) = plan.dom_var[k];
            let keys = &plan.dom_var_keys[k];
            let rest = &plan.by_dom_var[k];
            for &t in &ctx.delta_terms[lo..hi] {
                // Dom-sweep locality: a term that does not occur in the
                // delta at every position the variable also takes in a
                // regular atom cannot complete a match — skip the join.
                if !keys.is_empty()
                    && !keys
                        .iter()
                        .all(|key| ctx.delta_occ.get(key).is_some_and(|occ| occ.contains(&t)))
                {
                    dom_pruned += 1;
                    continue;
                }
                dom_sweeps += 1;
                let fixed = [(v, t)];
                rest.for_each_match_with_facts(
                    ctx.instance,
                    &fixed,
                    &mut counters,
                    |asg, trail| {
                        emit(plan, ridx, asg, trail, Path::DomVar(k), ctx, &mut buf);
                        true
                    },
                );
            }
        }
        RoundTask::DomGround { ridx, k } => {
            let plan = &ctx.plans[ridx];
            let rest = &plan.by_dom_ground[k];
            rest.for_each_match_with_facts(ctx.instance, &[], &mut counters, |asg, trail| {
                emit(plan, ridx, asg, trail, Path::DomGround(k), ctx, &mut buf);
                true
            });
        }
        RoundTask::EmptyBody { ridx } | RoundTask::FullRule { ridx } => {
            let plan = &ctx.plans[ridx];
            plan.full
                .for_each_match_with_facts(ctx.instance, &[], &mut counters, |asg, trail| {
                    emit(plan, ridx, asg, trail, Path::Full, ctx, &mut buf);
                    true
                });
        }
    }
    TaskOut {
        events: buf.events,
        triggers: buf.triggers,
        candidates: counters.candidates,
        dom_sweeps,
        dom_pruned,
    }
}

/// Processes one complete body match: reconstructs the trigger from the
/// match trail (totally — one fact index per regular atom, no hash
/// re-probing), drops non-canonical arrivals of multi-delta triggers,
/// instantiates the head, and stages the produced facts as a
/// [`StagedEvent`] in the task's output.
#[allow(clippy::too_many_arguments)]
fn emit(
    plan: &RulePlan<'_>,
    ridx: usize,
    asg: &Assignment,
    trail: &[(usize, usize)],
    path: Path,
    ctx: &RoundCtx<'_>,
    buf: &mut TaskBuf,
) {
    let delta = ctx.delta;
    buf.triggers += 1;
    // Rebuild the trigger from the trail. The rest-plans omit one body
    // atom, so trail atom indices at or past the omitted one shift by one.
    buf.trigger_buf.clear();
    buf.trigger_buf.resize(plan.regular.len(), FactIdx::MAX);
    let skipped = match path {
        Path::Full => None,
        Path::Regular(k, forced) => {
            buf.trigger_buf[k] = forced;
            Some(plan.regular[k])
        }
        Path::DomVar(k) => Some(plan.dom_var[k].0),
        Path::DomGround(k) => Some(plan.dom_ground[k].0),
    };
    for &(ai, fi) in trail {
        let bi = match skipped {
            Some(s) if ai >= s => ai + 1,
            _ => ai,
        };
        let pos = plan.reg_pos[bi].expect("trail entries are regular atoms");
        buf.trigger_buf[pos] = fi;
    }
    assert!(
        !buf.trigger_buf.contains(&FactIdx::MAX),
        "trigger recording must cover every regular body atom"
    );
    let term_of = |v: Var| asg[v.index()].expect("bound body var");

    // Canonical-path check: process the trigger only if no earlier path
    // also reaches it this round (i.e. the forced atom is the trigger's
    // first delta body atom).
    let regular_delta_before = |k: usize| -> bool {
        buf.trigger_buf[..k]
            .iter()
            .any(|&fi| fi >= delta.fact_start)
    };
    let dom_var_delta_before = |k: usize| -> bool {
        plan.dom_var[..k]
            .iter()
            .any(|&(_, v)| delta.new_terms.contains(&term_of(v)))
    };
    match path {
        Path::Full => {}
        Path::Regular(k, _) => {
            if regular_delta_before(k) {
                return;
            }
        }
        Path::DomVar(k) => {
            if regular_delta_before(plan.regular.len()) || dom_var_delta_before(k) {
                return;
            }
        }
        Path::DomGround(k) => {
            if regular_delta_before(plan.regular.len())
                || dom_var_delta_before(plan.dom_var.len())
                || plan.dom_ground[..k]
                    .iter()
                    .any(|&(_, c)| delta.new_terms.contains(&c))
            {
                return;
            }
        }
    }

    buf.frontier_buf.clear();
    buf.frontier_buf
        .extend(plan.skolemized.frontier.iter().map(|v| term_of(*v)));
    if ctx.record_all {
        let key = (ridx, buf.trigger_buf.clone(), buf.frontier_buf.clone());
        if !buf.seen_derivs.insert(key) {
            return;
        }
    }
    let facts = plan
        .skolemized
        .apply_with_frontier(plan.rule, &buf.frontier_buf, term_of);
    let mut fresh = Vec::new();
    let mut existing = Vec::new();
    for fact in facts {
        if ctx.record_all {
            match ctx.instance.index_of(&fact) {
                Some(idx) => existing.push(idx),
                None => fresh.push(fact),
            }
        } else if !ctx.instance.contains(&fact) && buf.fresh_set.insert(fact.clone()) {
            fresh.push(fact);
        }
    }
    if fresh.is_empty() && existing.is_empty() {
        return;
    }
    buf.events.push(StagedEvent {
        rule: ridx,
        trigger: buf.trigger_buf.clone(),
        frontier: buf.frontier_buf.clone(),
        fresh,
        existing,
    });
}

/// The merged outcome of one round's tasks, in sequential emission order.
struct RoundMerge {
    fresh: Vec<(Fact, Derivation)>,
    fresh_extra: Vec<(Fact, Derivation)>,
    existing_extra: Vec<(FactIdx, Derivation)>,
    triggers: u64,
    candidates: u64,
    dom_sweeps: u64,
    dom_pruned: u64,
}

/// Folds task outputs in submission order, replaying exactly the staging
/// decisions of a sequential run: the first staging of a fact wins, later
/// stagings survive only as `record_all` extras, and duplicate
/// `(rule, trigger, frontier)` derivations are dropped round-globally.
fn merge_task_outputs(outs: Vec<TaskOut>, round: usize, record_all: bool) -> RoundMerge {
    let mut m = RoundMerge {
        fresh: Vec::new(),
        fresh_extra: Vec::new(),
        existing_extra: Vec::new(),
        triggers: 0,
        candidates: 0,
        dom_sweeps: 0,
        dom_pruned: 0,
    };
    let mut fresh_set: HashSet<Fact> = HashSet::new();
    let mut seen_derivs: HashSet<(usize, Vec<FactIdx>, Vec<TermId>)> = HashSet::new();
    for out in outs {
        m.triggers += out.triggers;
        m.candidates += out.candidates;
        m.dom_sweeps += out.dom_sweeps;
        m.dom_pruned += out.dom_pruned;
        for ev in out.events {
            if record_all && !seen_derivs.insert((ev.rule, ev.trigger.clone(), ev.frontier.clone()))
            {
                continue;
            }
            let deriv = Derivation {
                rule: ev.rule,
                trigger: ev.trigger,
                frontier: ev.frontier,
                round,
            };
            for idx in ev.existing {
                m.existing_extra.push((idx, deriv.clone()));
            }
            for fact in ev.fresh {
                if fresh_set.insert(fact.clone()) {
                    m.fresh.push((fact, deriv.clone()));
                } else if record_all {
                    m.fresh_extra.push((fact, deriv.clone()));
                }
            }
        }
    }
    m
}

/// Splits `n` work units into at most `2 × threads` contiguous chunks.
/// Chunk boundaries affect scheduling only — outputs are merged in chunk
/// order, so results are independent of the split.
fn chunks(n: usize, threads: usize) -> impl Iterator<Item = (usize, usize)> {
    let parts = if threads <= 1 {
        1
    } else {
        (threads * 2).min(n.max(1))
    };
    let size = n.div_ceil(parts).max(1);
    (0..n).step_by(size).map(move |lo| (lo, (lo + size).min(n)))
}

fn run_chase(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    semi_naive: bool,
    record_all: bool,
    exec: &Executor,
) -> Chase {
    let plans = plans(theory);
    let mut instance = db.clone();
    let mut round_of: Vec<usize> = vec![0; instance.len()];
    let mut derivations: Vec<Option<Derivation>> = vec![None; instance.len()];
    let mut all_derivations: Vec<Vec<Derivation>> = vec![Vec::new(); instance.len()];
    let mut outcome = ChaseOutcome::Exhausted;
    let mut rounds = 0;
    let mut stats = ChaseStats {
        threads: exec.threads(),
        ..ChaseStats::default()
    };
    // Snapshot 0 marks the loaded input; one more is taken after each
    // completed round so `prefix(n)` can truncate instead of re-indexing.
    let mut round_snapshots = vec![instance.snapshot()];
    // Build the dom-sweep locality index only when some dom variable also
    // occurs in a regular body atom.
    let use_occ = plans
        .iter()
        .any(|p| p.dom_var_keys.iter().any(|keys| !keys.is_empty()));

    // The delta of the previous round, as contiguous index ranges (facts
    // and domain terms are append-only, so each round owns a dense slice).
    let mut delta_facts: Range<FactIdx> = 0..instance.len();
    let mut delta_term_range: Range<usize> = 0..instance.domain_len();

    for round in 1..=budget.max_rounds {
        let t0 = Instant::now();
        let outs = {
            // Per-round delta indexes and the task list, in sequential
            // visit order.
            let mut delta_by_pred: HashMap<Pred, Vec<FactIdx>> = HashMap::new();
            let mut delta_occ: HashMap<(Pred, u32), HashSet<TermId>> = HashMap::new();
            let mut tasks: Vec<RoundTask> = Vec::new();
            let delta_terms: &[TermId];
            let delta;
            if semi_naive {
                for fi in delta_facts.clone() {
                    delta_by_pred
                        .entry(instance.fact(fi).pred)
                        .or_default()
                        .push(fi);
                }
                delta_terms = &instance.domain()[delta_term_range.clone()];
                delta = DeltaCtx {
                    fact_start: delta_facts.start,
                    new_terms: delta_terms.iter().copied().collect(),
                };
                if use_occ {
                    for fi in delta_facts.clone() {
                        let f = instance.fact(fi);
                        for (pos, t) in f.args.iter().enumerate() {
                            if delta.new_terms.contains(t) {
                                delta_occ
                                    .entry((f.pred, pos as u32))
                                    .or_default()
                                    .insert(*t);
                            }
                        }
                    }
                }
                for (ridx, plan) in plans.iter().enumerate() {
                    let body = plan.rule.body();
                    // (a) Force each regular body atom onto the fact delta.
                    for (k, &bi) in plan.regular.iter().enumerate() {
                        if let Some(idxs) = delta_by_pred.get(&body[bi].pred) {
                            for (lo, hi) in chunks(idxs.len(), exec.threads()) {
                                tasks.push(RoundTask::Regular { ridx, k, lo, hi });
                            }
                        }
                    }
                    // (b) Force each dom-scoped variable onto the domain
                    // delta.
                    for k in 0..plan.dom_var.len() {
                        for (lo, hi) in chunks(delta_terms.len(), exec.threads()) {
                            tasks.push(RoundTask::DomVar { ridx, k, lo, hi });
                        }
                    }
                    // (c) Ground `dom` atoms join the delta exactly when
                    // their constant first enters the active domain (e.g.
                    // the body of `dom(a) -> p(a)` has no variable to force
                    // — the constant itself is the delta).
                    for (k, &(_, c)) in plan.dom_ground.iter().enumerate() {
                        if delta.new_terms.contains(&c) {
                            tasks.push(RoundTask::DomGround { ridx, k });
                        }
                    }
                    // (d) Rules with no body fire exactly once, in round 1.
                    if body.is_empty() && round == 1 {
                        tasks.push(RoundTask::EmptyBody { ridx });
                    }
                }
            } else {
                delta_terms = &[];
                delta = DeltaCtx {
                    fact_start: 0,
                    new_terms: HashSet::new(),
                };
                for ridx in 0..plans.len() {
                    tasks.push(RoundTask::FullRule { ridx });
                }
            }
            let ctx = RoundCtx {
                plans: &plans,
                instance: &instance,
                delta: &delta,
                delta_by_pred: &delta_by_pred,
                delta_terms,
                delta_occ: &delta_occ,
                record_all,
            };
            exec.map(&tasks, |task| run_task(&ctx, *task))
        };
        let enum_wall = t0.elapsed();
        let t1 = Instant::now();
        let mut m = merge_task_outputs(outs, round, record_all);

        if m.fresh.is_empty() {
            stats.rounds.push(RoundStats {
                round,
                triggers: m.triggers,
                candidates: m.candidates,
                dom_sweeps: m.dom_sweeps,
                dom_pruned: m.dom_pruned,
                facts_added: 0,
                terms_added: 0,
                enum_wall,
                merge_wall: t1.elapsed(),
                wall: t0.elapsed(),
            });
            outcome = ChaseOutcome::Fixpoint;
            break;
        }

        let facts_before = instance.len();
        let terms_before = instance.domain_len();
        for (fact, deriv) in m.fresh.drain(..) {
            if instance.insert(fact).is_some() {
                round_of.push(round);
                all_derivations.push(vec![deriv.clone()]);
                derivations.push(Some(deriv));
            }
        }
        if record_all {
            for (idx, deriv) in m.existing_extra.drain(..) {
                all_derivations[idx].push(deriv);
            }
            for (fact, deriv) in m.fresh_extra.drain(..) {
                let idx = instance
                    .index_of(&fact)
                    .expect("fresh facts were just inserted");
                all_derivations[idx].push(deriv);
            }
        }
        delta_facts = facts_before..instance.len();
        delta_term_range = terms_before..instance.domain_len();
        stats.rounds.push(RoundStats {
            round,
            triggers: m.triggers,
            candidates: m.candidates,
            dom_sweeps: m.dom_sweeps,
            dom_pruned: m.dom_pruned,
            facts_added: instance.len() - facts_before,
            terms_added: instance.domain_len() - terms_before,
            enum_wall,
            merge_wall: t1.elapsed(),
            wall: t0.elapsed(),
        });
        rounds = round;
        round_snapshots.push(instance.snapshot());
        if instance.len() > budget.max_facts {
            break;
        }
    }

    if !record_all {
        for d in &mut all_derivations {
            d.clear();
        }
    }
    let mem = instance.stats();
    stats.peak_facts = mem.peak_facts;
    stats.bytes_facts = mem.bytes_facts;
    stats.bytes_index = mem.bytes_index;
    stats.bytes_tuples = mem.bytes_tuples;
    Chase {
        instance,
        round_of,
        rounds,
        outcome,
        derivations,
        all_derivations,
        stats,
        round_snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_query, parse_theory, Symbol};

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn example_1_and_7_mother_chain() {
        // Examples 1 and 7 of the paper.
        let t = parse_theory(
            "human(Y) -> mother(Y, Z).\n\
             mother(X, Y) -> human(Y).",
        )
        .unwrap();
        let d = parse_instance("human(abel).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(6));
        assert_eq!(ch.outcome, ChaseOutcome::Exhausted); // infinite chase
                                                         // Ch_1 adds mother(abel, mum(abel)).
        let ch1 = ch.prefix(1);
        assert_eq!(ch1.len(), 2);
        // The paper's query: ∃y,z mother(abel,y), mother(y,z).
        let q = parse_query("? :- mother(abel, Y), mother(Y, Z).").unwrap();
        assert!(qr_hom::holds(&q, &ch.prefix(3), &[]));
        assert!(!qr_hom::holds(&q, &ch.prefix(2), &[]));
    }

    #[test]
    fn exercise_12_forward_paths() {
        // T_p: E(x,y) -> ∃z E(y,z); chase grows one edge per element per round.
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(5));
        assert_eq!(ch.instance.len(), 6);
        assert_eq!(ch.rounds, 5);
    }

    #[test]
    fn datalog_fixpoint() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        assert!(ch.terminated());
        assert_eq!(ch.instance.len(), 6); // transitive closure of a 3-path
    }

    #[test]
    fn semi_naive_equals_naive_per_round() {
        let t = parse_theory(
            "e(X,Y) -> e(Y,Z).\n\
             e(X,Y), e(Y,Z) -> f(X,Z).\n\
             f(X,Y) -> g(Y).",
        )
        .unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let fast = chase(&t, &d, ChaseBudget::rounds(4));
        let slow = chase_naive(&t, &d, ChaseBudget::rounds(4));
        assert_eq!(fast.rounds, slow.rounds);
        for n in 0..=fast.rounds {
            assert_eq!(fast.prefix(n), slow.prefix(n), "round {n} differs");
        }
    }

    #[test]
    fn observation_8_literal_equality() {
        // D ⊆ F ⊆ Ch(T,D) implies Ch(T,F) = Ch(T,D), literally.
        let t = parse_theory("human(Y) -> mother(Y, Z).\nmother(X, Y) -> human(Y).").unwrap();
        let d = parse_instance("human(abel).").unwrap();
        let ch_d = chase(&t, &d, ChaseBudget::rounds(8));
        let f = ch_d.prefix(3); // D ⊆ F ⊆ Ch(T,D)
        let ch_f = chase(&t, &f, ChaseBudget::rounds(8));
        // Compare on equal depth: Ch_8(D) ⊆ Ch_8(F) ⊆ Ch_11(D); check the
        // deep prefixes agree where both are defined.
        assert!(ch_d.instance.subset_of(&ch_f.instance));
    }

    #[test]
    fn dom_rules_fire_on_all_terms() {
        // Pins rule of T_d: every domain element sprouts an r-edge.
        let t = parse_theory("dom(X) -> r(X, Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(2));
        // Round 1: r(a,z_a), r(b,z_b); round 2: pins fire on z_a, z_b.
        assert_eq!(ch.prefix(1).len(), 1 + 2);
        assert_eq!(ch.prefix(2).len(), 1 + 2 + 2);
    }

    #[test]
    fn empty_body_rule_fires_once() {
        let t = parse_theory("true -> r(X,X), g(X,X).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(4));
        assert!(ch.terminated());
        assert_eq!(ch.instance.len(), 3);
        let loops: Vec<_> = ch.delta(1);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].args[0], loops[1].args[0]);
    }

    #[test]
    fn ground_dom_body_rule_fires() {
        // The body has no regular atom and no dom variable — only the
        // ground `dom(a)`. The semi-naive engine must still fire it when
        // `a` enters the active domain (regression: it used to never fire).
        let t = parse_theory("dom(a) -> p(a).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let fast = chase(&t, &d, ChaseBudget::rounds(3));
        let slow = chase_naive(&t, &d, ChaseBudget::rounds(3));
        assert_eq!(fast.instance, slow.instance);
        assert_eq!(fast.rounds, slow.rounds);
        assert!(fast
            .instance
            .contains(&Fact::new(qr_syntax::Pred::new("p", 1), vec![c("a")])));
        // And when the constant never appears, the rule never fires.
        let d2 = parse_instance("e(x,y).").unwrap();
        let ch2 = chase(&t, &d2, ChaseBudget::rounds(3));
        assert_eq!(ch2.instance.len(), 1);
    }

    #[test]
    fn ground_dom_fires_when_constant_arrives_late() {
        // `a` enters the domain only in round 1 (as a rule-produced
        // constant), so the ground-dom rule fires in round 2 — in both
        // engines.
        let t = parse_theory(
            "start(X) -> e(X, a).\n\
             dom(a) -> p(a).",
        )
        .unwrap();
        let d = parse_instance("start(s).").unwrap();
        let fast = chase(&t, &d, ChaseBudget::rounds(4));
        let slow = chase_naive(&t, &d, ChaseBudget::rounds(4));
        assert_eq!(fast.rounds, slow.rounds);
        for n in 0..=fast.rounds {
            assert_eq!(fast.prefix(n), slow.prefix(n), "round {n} differs");
        }
        let p_a = Fact::new(qr_syntax::Pred::new("p", 1), vec![c("a")]);
        let idx = fast.instance.index_of(&p_a).expect("p(a) derived");
        assert_eq!(fast.round_of[idx], 2);
    }

    #[test]
    fn mixed_ground_dom_and_regular_atoms() {
        // A trigger whose only delta contribution is the ground dom
        // constant: q(s) is old, `a` arrives in round 1.
        let t = parse_theory(
            "start(X) -> e(X, a).\n\
             q(X), dom(a) -> r(X).",
        )
        .unwrap();
        let d = parse_instance("start(s). q(s).").unwrap();
        let fast = chase(&t, &d, ChaseBudget::rounds(4));
        let slow = chase_naive(&t, &d, ChaseBudget::rounds(4));
        assert_eq!(fast.rounds, slow.rounds);
        for n in 0..=fast.rounds {
            assert_eq!(fast.prefix(n), slow.prefix(n), "round {n} differs");
        }
        assert!(fast
            .instance
            .contains(&Fact::new(qr_syntax::Pred::new("r", 1), vec![c("s")])));
    }

    #[test]
    fn provenance_recorded() {
        let t = parse_theory("e(X,Y), p(Y) -> f(X).").unwrap();
        let d = parse_instance("e(a,b). p(b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        assert!(ch.terminated());
        let fact = Fact::new(qr_syntax::Pred::new("f", 1), vec![c("a")]);
        let idx = ch
            .instance
            .iter()
            .position(|f| f == fact)
            .expect("derived fact present");
        let deriv = ch.derivations[idx].as_ref().unwrap();
        assert_eq!(deriv.rule, 0);
        assert_eq!(deriv.trigger.len(), 2);
        assert_eq!(deriv.frontier, vec![c("a")]);
    }

    #[test]
    fn provenance_is_total_per_regular_atom() {
        // Repeated predicates and a repeated fact image: the trigger must
        // still list one index per regular body atom, in body-atom order.
        let t = parse_theory("e(X,Y), e(Y,Z), e(X,X) -> f(X,Z).").unwrap();
        let d = parse_instance("e(a,a). e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        assert!(ch.terminated());
        for (idx, deriv) in ch.derivations.iter().enumerate() {
            if let Some(d) = deriv {
                assert_eq!(
                    d.trigger.len(),
                    3,
                    "trigger of fact {:?} must cover all 3 body atoms",
                    ch.instance.fact(idx)
                );
                // Each trigger index points at a fact of the right predicate.
                for &ti in &d.trigger {
                    assert_eq!(ch.instance.fact(ti).pred, qr_syntax::Pred::new("e", 2));
                }
            }
        }
        // f(a,a) (from X=Y=Z=a) and f(a,b) both derived.
        assert!(ch.instance.contains(&Fact::new(
            qr_syntax::Pred::new("f", 2),
            vec![c("a"), c("a")]
        )));
        assert!(ch.instance.contains(&Fact::new(
            qr_syntax::Pred::new("f", 2),
            vec![c("a"), c("b")]
        )));
    }

    #[test]
    fn multi_delta_trigger_recorded_exactly_once() {
        // Both body facts of the trigger (e(a,b), e(b,c)) are round-0
        // delta facts, so step (a) reaches the trigger twice (once per
        // forced atom); the hashed dedup must keep exactly one derivation.
        let t = parse_theory("e(X,Y), e(Y,Z) -> f(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let ch = chase_all(&t, &d, ChaseBudget::default());
        let fact = Fact::new(qr_syntax::Pred::new("f", 2), vec![c("a"), c("c")]);
        let idx = ch.instance.index_of(&fact).expect("derived");
        assert_eq!(
            ch.all_derivations[idx].len(),
            1,
            "one trigger, one derivation: {:?}",
            ch.all_derivations[idx]
        );
    }

    #[test]
    fn stats_track_rounds_and_growth() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        assert!(ch.terminated());
        // Rounds 1..N grew the instance; the last stats entry is the
        // fixpoint probe that added nothing.
        assert_eq!(ch.stats.rounds.len(), ch.rounds + 1);
        assert_eq!(ch.stats.facts_added(), ch.instance.len() - d.len());
        assert_eq!(ch.stats.rounds.last().unwrap().facts_added, 0);
        assert!(ch.stats.triggers() > 0);
        assert!(ch.stats.candidates() > 0);
        // No fresh terms: transitive closure invents nothing.
        assert_eq!(ch.stats.terms_added(), 0);
        // Existential rules do invent terms.
        let t2 = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let ch2 = chase(&t2, &d, ChaseBudget::rounds(2));
        assert_eq!(ch2.stats.terms_added(), ch2.instance.domain_len() - 4);
    }

    #[test]
    fn max_facts_budget_respected() {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let budget = ChaseBudget {
            max_rounds: 1000,
            max_facts: 50,
        };
        let ch = chase(&t, &d, budget);
        assert_eq!(ch.outcome, ChaseOutcome::Exhausted);
        assert!(ch.instance.len() <= 52);
    }

    /// Deep equality of everything a chase run exposes (wall times aside).
    fn assert_same_chase(a: &Chase, b: &Chase) {
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.round_of, b.round_of);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.derivations, b.derivations);
        assert_eq!(a.all_derivations, b.all_derivations);
        assert_eq!(a.stats.peak_facts, b.stats.peak_facts);
        assert_eq!(a.stats.bytes_facts, b.stats.bytes_facts);
        assert_eq!(a.stats.bytes_index, b.stats.bytes_index);
        assert_eq!(a.stats.bytes_tuples, b.stats.bytes_tuples);
        assert_eq!(a.stats.rounds.len(), b.stats.rounds.len());
        for (ra, rb) in a.stats.rounds.iter().zip(&b.stats.rounds) {
            assert_eq!(ra.triggers, rb.triggers);
            assert_eq!(ra.candidates, rb.candidates);
            assert_eq!(ra.dom_sweeps, rb.dom_sweeps);
            assert_eq!(ra.dom_pruned, rb.dom_pruned);
            assert_eq!(ra.facts_added, rb.facts_added);
            assert_eq!(ra.terms_added, rb.terms_added);
        }
    }

    #[test]
    fn parallel_chase_is_bit_identical_to_sequential() {
        let theories = [
            "e(X,Y), e(Y,Z) -> e(X,Z).",
            "e(X,Y) -> e(Y,Z).\ne(X,Y), e(Y,Z) -> f(X,Z).\nf(X,Y) -> g(Y).",
            "true -> r(X,X).\ndom(X) -> r(X,Z).\nr(X,Y), dom(Y) -> p(Y).",
            "start(X) -> e(X, a).\nq(X), dom(a) -> r(X).",
        ];
        let d = parse_instance("e(a,b). e(b,c). e(c,a). start(s). q(s).").unwrap();
        for src in theories {
            let t = parse_theory(src).unwrap();
            let seq = chase(&t, &d, ChaseBudget::rounds(5));
            for threads in [2, 4] {
                let par = chase_with(
                    &t,
                    &d,
                    ChaseBudget::rounds(5),
                    &Executor::with_threads(threads),
                );
                assert_same_chase(&seq, &par);
                assert_eq!(par.stats.threads, threads);
            }
            let seq_all = chase_all(&t, &d, ChaseBudget::rounds(5));
            let par_all =
                chase_all_with(&t, &d, ChaseBudget::rounds(5), &Executor::with_threads(3));
            assert_same_chase(&seq_all, &par_all);
        }
    }

    #[test]
    fn dom_sweep_locality_prunes_unmatchable_terms() {
        // The dom variable Y also occurs in the regular atom g(X,Y), so
        // only terms occurring at (g, 1) within the delta can complete a
        // match. The input floods the domain with terms that never do.
        let t = parse_theory(
            "f(X) -> g(X, Z).\n\
             g(X, Y), dom(Y) -> h(Y).",
        )
        .unwrap();
        let d = parse_instance("f(a). p(c1,c2). p(c3,c4). p(c5,c6).").unwrap();
        let fast = chase(&t, &d, ChaseBudget::rounds(4));
        let slow = chase_naive(&t, &d, ChaseBudget::rounds(4));
        assert_eq!(fast.instance, slow.instance);
        assert_eq!(fast.rounds, slow.rounds);
        // Round 1 sweeps 7 new terms (a, c1..c6) and prunes every one of
        // them: no g-fact exists yet, so nothing occurs at (g, 1).
        assert_eq!(fast.stats.rounds[0].dom_pruned, 7);
        assert_eq!(fast.stats.rounds[0].dom_sweeps, 0);
        // Round 2's delta is g(a, z) with one new term z at (g, 1): the
        // sweep runs for z only, and h(z) is derived.
        assert_eq!(fast.stats.rounds[1].dom_pruned, 0);
        assert_eq!(fast.stats.rounds[1].dom_sweeps, 1);
        assert!(fast.stats.dom_pruned() > 0);
        let h = qr_syntax::Pred::new("h", 1);
        assert_eq!(fast.instance.with_pred(h).len(), 1);
    }

    #[test]
    fn pure_pin_rules_are_never_pruned() {
        // T_d's pins rule `dom(X) -> r(X,Z), g(X,Z1)` has no regular atom
        // mentioning X: every new term is swept, none pruned, and the
        // locality index is not even built.
        let t = qr_core_like_pins();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(3));
        assert_eq!(ch.stats.dom_pruned(), 0);
        // Round 1 sweeps the 2 input terms, round 2 the 2 fresh pins, ...
        assert_eq!(ch.stats.rounds[0].dom_sweeps, 2);
        assert_eq!(ch.stats.rounds[1].dom_sweeps, 2);
    }

    fn qr_core_like_pins() -> Theory {
        parse_theory("dom(X) -> r(X, Z).").unwrap()
    }

    #[test]
    fn delta_slicing_matches_round_of_scan() {
        // Multi-round chase with fresh terms and several predicates; the
        // snapshot-sliced delta must equal the old full O(n) scan on every
        // round (and be empty past the last).
        let t = parse_theory(
            "e(X,Y) -> e(Y,Z).\n\
             e(X,Y), e(Y,Z) -> f(X,Z).\n\
             f(X,Y) -> g(Y).",
        )
        .unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(4));
        assert!(ch.rounds >= 3);
        for n in 0..=ch.rounds + 1 {
            let scanned: Vec<FactRef<'_>> = ch
                .instance
                .iter()
                .enumerate()
                .filter_map(|(i, f)| (ch.round_of[i] == n).then_some(f))
                .collect();
            assert_eq!(ch.delta(n), scanned, "round {n} delta differs");
        }
        assert_eq!(ch.delta_range(0), Some(0..d.len()));
        assert_eq!(ch.delta_range(ch.rounds + 1), None);
    }

    #[test]
    fn first_round_of_terms_matches_fact_scan() {
        // Existential rules invent terms in later rounds; the snapshot
        // domain boundaries must reproduce the old per-fact min-fold.
        let t = parse_theory(
            "e(X,Y) -> e(Y,Z).\n\
             e(X,Y), e(Y,Z) -> f(X,Z).",
        )
        .unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(4));
        let mut scanned: HashMap<TermId, usize> = HashMap::new();
        for (i, f) in ch.instance.iter().enumerate() {
            for t in f.terms() {
                let r = ch.round_of[i];
                scanned
                    .entry(t)
                    .and_modify(|cur| *cur = (*cur).min(r))
                    .or_insert(r);
            }
        }
        assert_eq!(ch.first_round_of_terms(), scanned);
        assert!(scanned.values().any(|&r| r > 0), "fresh terms exercised");
    }

    #[test]
    fn first_entailment_depth_works() {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let q = parse_query("? :- e(X1,X2), e(X2,X3), e(X3,X4).").unwrap();
        let depth = crate::first_entailment_depth(&t, &d, &q, &[], ChaseBudget::rounds(8));
        assert_eq!(depth, Some(2));
    }
}
