//! The columnar fact store.
//!
//! A fact is a `(PredId, TupleId)` pair. Argument tuples are interned in a
//! [`TupleArena`]: one flat element vector plus an end-offset vector, so a
//! fact costs two `u32`s in the fact log instead of a heap-allocated
//! `Box<[T]>`. Per-predicate tables keep a dense row list plus one postings
//! map per argument position (the "stripes"), giving the same
//! `(pred, pos, term)` join index the old layout kept in a single global
//! hash map — but with `u32` postings and without per-key `Pred` copies.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Identifier of a registered predicate (dense, registration-ordered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(u32);

impl PredId {
    /// The dense index of this predicate (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned argument tuple (dense, first-intern-ordered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TupleId(u32);

impl TupleId {
    /// The dense index of this tuple in the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Logical memory footprint of a [`FactStore`], in bytes.
///
/// Sizes are *logical*: element counts times fixed reference sizes (4-byte
/// ids, and documented per-entry constants for hash-map entries on a 64-bit
/// layout). They deliberately ignore allocator slack and hash-table load
/// factors so the numbers are bit-identical across platforms and thread
/// counts — CI gates on them via `bench_diff`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Number of facts currently stored.
    pub facts: usize,
    /// High-water mark of `facts` since creation (see [`FactStore::restore`]).
    pub peak_facts: usize,
    /// Number of distinct interned argument tuples.
    pub tuples: usize,
    /// Total postings entries (one per fact argument position).
    pub postings: usize,
    /// Number of distinct `(pred, pos, term)` index keys.
    pub index_keys: usize,
    /// Bytes of the fact log: 8 per fact (`u32` pred + `u32` tuple).
    pub bytes_facts: usize,
    /// Bytes of the join indexes: per-pred rows, stripe postings and keys,
    /// and the dedup map.
    pub bytes_index: usize,
    /// Bytes of the tuple arena: flat elements, end offsets, intern table.
    pub bytes_tuples: usize,
}

impl StorageStats {
    /// Total measured fact-store bytes (`bytes_facts + bytes_index +
    /// bytes_tuples`).
    pub fn bytes_total(&self) -> usize {
        self.bytes_facts + self.bytes_index + self.bytes_tuples
    }
}

/// An O(1) prefix marker of a [`FactStore`], valid for restoring with
/// [`FactStore::restore`] as long as no *earlier* state was restored in
/// between. Snapshots only record the four append-only lengths, so taking
/// one costs four word copies regardless of store size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    facts: usize,
    domain: usize,
    tuples: usize,
    preds: usize,
}

impl Snapshot {
    /// Number of facts at snapshot time.
    pub fn facts(&self) -> usize {
        self.facts
    }

    /// Number of registered predicates at snapshot time.
    pub fn preds(&self) -> usize {
        self.preds
    }

    /// Number of domain elements at snapshot time.
    pub fn domain(&self) -> usize {
        self.domain
    }
}

/// FNV-1a over the element stream of a tuple; deterministic (no per-process
/// seeding) so intern buckets — and therefore every byte counter — replay
/// across runs.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn tuple_hash<T: Hash>(args: &[T]) -> u64 {
    let mut h = Fnv64::new();
    for a in args {
        a.hash(&mut h);
    }
    h.finish()
}

/// Dictionary-interning arena for argument tuples.
///
/// Tuple `i` occupies `data[end(i-1)..end(i)]`; ids are dense and assigned
/// in first-intern order, so truncating to a prefix count undoes interning
/// exactly.
#[derive(Clone, Debug)]
struct TupleArena<T> {
    data: Vec<T>,
    ends: Vec<u32>,
    /// FNV hash → candidate tuple ids. Only ever probed point-wise, never
    /// iterated, so `HashMap` order can't leak into results.
    buckets: HashMap<u64, Vec<u32>>,
}

impl<T> Default for TupleArena<T> {
    fn default() -> TupleArena<T> {
        TupleArena {
            data: Vec::new(),
            ends: Vec::new(),
            buckets: HashMap::new(),
        }
    }
}

impl<T: Copy + Eq + Hash> TupleArena<T> {
    fn len(&self) -> usize {
        self.ends.len()
    }

    fn get(&self, id: TupleId) -> &[T] {
        let i = id.index();
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[start..self.ends[i] as usize]
    }

    /// Finds an existing tuple without interning (used by read-only
    /// membership probes, which must take `&self`).
    fn find(&self, args: &[T]) -> Option<TupleId> {
        let ids = self.buckets.get(&tuple_hash(args))?;
        ids.iter()
            .copied()
            .find(|&id| self.get(TupleId(id)) == args)
            .map(TupleId)
    }

    /// Interns a tuple, returning its id (existing or freshly assigned).
    fn intern(&mut self, args: &[T]) -> TupleId {
        let hash = tuple_hash(args);
        if let Some(ids) = self.buckets.get(&hash) {
            for &id in ids {
                if self.get(TupleId(id)) == args {
                    return TupleId(id);
                }
            }
        }
        let id = self.ends.len() as u32;
        assert!(id < u32::MAX, "tuple arena overflow");
        self.data.extend_from_slice(args);
        self.ends.push(self.data.len() as u32);
        self.buckets.entry(hash).or_default().push(id);
        TupleId(id)
    }

    /// Drops every tuple with id `>= keep`, undoing their interning.
    fn truncate(&mut self, keep: usize) {
        for id in (keep..self.ends.len()).rev() {
            let hash = tuple_hash(self.get(TupleId(id as u32)));
            let bucket = self
                .buckets
                .get_mut(&hash)
                .expect("interned tuple missing from bucket");
            let popped = bucket.pop();
            debug_assert_eq!(popped, Some(id as u32), "tuple ids pop in order");
            if bucket.is_empty() {
                self.buckets.remove(&hash);
            }
        }
        let data_len = if keep == 0 {
            0
        } else {
            self.ends[keep - 1] as usize
        };
        self.ends.truncate(keep);
        self.data.truncate(data_len);
    }
}

/// Per-predicate column table: dense row list plus one postings map per
/// argument position.
#[derive(Clone, Debug)]
struct PredTable<T> {
    arity: u32,
    /// Indices of all facts with this predicate, in insertion order.
    rows: Vec<u32>,
    /// `stripes[pos][term]` = indices of facts whose argument at `pos` is
    /// `term`, in insertion order.
    stripes: Vec<HashMap<T, Vec<u32>>>,
}

/// Columnar fact store, generic over the element type `T` (term ids in
/// practice; tests use plain integers).
///
/// Invariants relied on by callers:
///
/// * fact indices are dense and insertion-ordered; duplicates are rejected
///   without any state change,
/// * the domain (first-occurrence order of elements) grows append-only,
/// * all query methods take `&self` and never mutate (safe to share across
///   worker threads),
/// * no method ever iterates a hash map, so results are deterministic.
#[derive(Clone, Debug)]
pub struct FactStore<T> {
    /// Column: predicate id of fact `i`.
    fact_pred: Vec<u32>,
    /// Column: tuple id of fact `i`.
    fact_tuple: Vec<u32>,
    tuples: TupleArena<T>,
    preds: Vec<PredTable<T>>,
    /// `(pred << 32 | tuple)` → fact index, for O(1) duplicate detection.
    dedup: HashMap<u64, u32>,
    domain: Vec<T>,
    domain_set: HashSet<T>,
    postings: usize,
    index_keys: usize,
    peak_facts: usize,
}

impl<T> Default for FactStore<T> {
    fn default() -> FactStore<T> {
        FactStore {
            fact_pred: Vec::new(),
            fact_tuple: Vec::new(),
            tuples: TupleArena::default(),
            preds: Vec::new(),
            dedup: HashMap::new(),
            domain: Vec::new(),
            domain_set: HashSet::new(),
            postings: 0,
            index_keys: 0,
            peak_facts: 0,
        }
    }
}

fn dedup_key(pred: PredId, tuple: TupleId) -> u64 {
    ((pred.0 as u64) << 32) | tuple.0 as u64
}

impl<T: Copy + Eq + Hash> FactStore<T> {
    /// The empty store.
    pub fn new() -> FactStore<T> {
        FactStore::default()
    }

    /// Registers a new predicate of the given arity, returning its dense
    /// id. Ids are assigned in registration order.
    pub fn register_pred(&mut self, arity: u32) -> PredId {
        let id = self.preds.len();
        assert!(id < u32::MAX as usize, "predicate table overflow");
        self.preds.push(PredTable {
            arity,
            rows: Vec::new(),
            stripes: (0..arity).map(|_| HashMap::new()).collect(),
        });
        PredId(id as u32)
    }

    /// Number of registered predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// The id of the `index`-th registered predicate (ids are dense and
    /// registration-ordered).
    pub fn pred_id(&self, index: usize) -> PredId {
        assert!(index < self.preds.len(), "predicate index out of range");
        PredId(index as u32)
    }

    /// Arity of a registered predicate.
    pub fn arity(&self, pred: PredId) -> u32 {
        self.preds[pred.index()].arity
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.fact_pred.len()
    }

    /// `true` iff the store has no facts.
    pub fn is_empty(&self) -> bool {
        self.fact_pred.is_empty()
    }

    /// Inserts a fact; returns `Some(idx)` with the assigned dense index
    /// if it was not already present, `None` for duplicates (no state
    /// change beyond tuple interning, which is idempotent for duplicates).
    pub fn insert(&mut self, pred: PredId, args: &[T]) -> Option<u32> {
        debug_assert_eq!(args.len(), self.preds[pred.index()].arity as usize);
        let tuple = self.tuples.intern(args);
        let key = dedup_key(pred, tuple);
        if self.dedup.contains_key(&key) {
            return None;
        }
        let idx = self.fact_pred.len();
        assert!(idx < u32::MAX as usize, "fact store overflow");
        let idx = idx as u32;
        for &t in args {
            if self.domain_set.insert(t) {
                self.domain.push(t);
            }
        }
        let table = &mut self.preds[pred.index()];
        table.rows.push(idx);
        let mut new_keys = 0;
        for (pos, &t) in args.iter().enumerate() {
            table.stripes[pos]
                .entry(t)
                .or_insert_with(|| {
                    new_keys += 1;
                    Vec::new()
                })
                .push(idx);
        }
        self.index_keys += new_keys;
        self.postings += args.len();
        self.dedup.insert(key, idx);
        self.fact_pred.push(pred.0);
        self.fact_tuple.push(tuple.0);
        self.peak_facts = self.peak_facts.max(self.fact_pred.len());
        Some(idx)
    }

    /// The index of the fact `pred(args)`, if present (read-only probe).
    pub fn lookup(&self, pred: PredId, args: &[T]) -> Option<u32> {
        let tuple = self.tuples.find(args)?;
        self.dedup.get(&dedup_key(pred, tuple)).copied()
    }

    /// Predicate id of the fact at `idx`.
    pub fn pred_of(&self, idx: usize) -> PredId {
        PredId(self.fact_pred[idx])
    }

    /// Argument tuple of the fact at `idx`.
    pub fn args(&self, idx: usize) -> &[T] {
        self.tuples.get(TupleId(self.fact_tuple[idx]))
    }

    /// Interned tuple id of the fact at `idx`.
    pub fn tuple_of(&self, idx: usize) -> TupleId {
        TupleId(self.fact_tuple[idx])
    }

    /// Indices of all facts with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> &[u32] {
        &self.preds[pred.index()].rows
    }

    /// Indices of all facts with `pred` whose argument at `pos` is `term`,
    /// in insertion order.
    pub fn with_pred_pos_term(&self, pred: PredId, pos: u32, term: T) -> &[u32] {
        self.preds[pred.index()].stripes[pos as usize]
            .get(&term)
            .map_or(&[], Vec::as_slice)
    }

    /// The active domain (first-occurrence order of elements).
    pub fn domain(&self) -> &[T] {
        &self.domain
    }

    /// `true` iff `t` occurs in some fact.
    pub fn contains_element(&self, t: T) -> bool {
        self.domain_set.contains(&t)
    }

    /// Logical memory footprint; see [`StorageStats`] for the accounting
    /// model. Per-entry constants (64-bit layout): intern-table entry 12
    /// (`u64` hash key amortized plus `u32` id), dedup entry 12 (`u64`
    /// key plus `u32` index), stripe key `size_of::<T>() + 16` (key plus
    /// list header).
    pub fn stats(&self) -> StorageStats {
        let e = std::mem::size_of::<T>();
        let facts = self.len();
        StorageStats {
            facts,
            peak_facts: self.peak_facts,
            tuples: self.tuples.len(),
            postings: self.postings,
            index_keys: self.index_keys,
            bytes_facts: facts * 8,
            bytes_index: facts * 4          // per-pred rows entries
                + self.postings * 4         // stripe postings entries
                + self.index_keys * (e + 16) // stripe keys + list headers
                + facts * 12, // dedup entries
            bytes_tuples: self.tuples.data.len() * e
                + self.tuples.ends.len() * 4
                + self.tuples.len() * 12, // intern-table entries
        }
    }

    /// Takes an O(1) snapshot of the current (append-only) lengths.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            facts: self.len(),
            domain: self.domain.len(),
            tuples: self.tuples.len(),
            preds: self.preds.len(),
        }
    }

    /// Restores the store to a snapshot state by popping the suffix
    /// inserted since, in reverse insertion order: postings tails, rows,
    /// dedup entries, then tuples, domain elements, and late-registered
    /// predicates. The high-water mark `peak_facts` is *kept* (use
    /// [`FactStore::truncated`] for a fresh-looking prefix copy).
    ///
    /// Cost is O(facts dropped), independent of the facts kept.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert!(
            snap.facts <= self.len()
                && snap.domain <= self.domain.len()
                && snap.tuples <= self.tuples.len()
                && snap.preds <= self.preds.len(),
            "snapshot is not a prefix of the current store"
        );
        for idx in (snap.facts..self.len()).rev() {
            let pred = self.fact_pred[idx] as usize;
            let tuple = TupleId(self.fact_tuple[idx]);
            let args = self.tuples.get(tuple);
            let table = &mut self.preds[pred];
            for (pos, &t) in args.iter().enumerate() {
                let stripe = &mut table.stripes[pos];
                let list = stripe.get_mut(&t).expect("indexed term missing");
                let popped = list.pop();
                debug_assert_eq!(popped, Some(idx as u32), "postings pop in order");
                if list.is_empty() {
                    stripe.remove(&t);
                    self.index_keys -= 1;
                }
            }
            let row = table.rows.pop();
            debug_assert_eq!(row, Some(idx as u32), "rows pop in order");
            self.postings -= args.len();
            self.dedup.remove(&dedup_key(PredId(pred as u32), tuple));
        }
        self.fact_pred.truncate(snap.facts);
        self.fact_tuple.truncate(snap.facts);
        self.tuples.truncate(snap.tuples);
        for &t in &self.domain[snap.domain..] {
            self.domain_set.remove(&t);
        }
        self.domain.truncate(snap.domain);
        debug_assert!(
            self.preds[snap.preds..].iter().all(|p| p.rows.is_empty()),
            "late-registered predicates must have no surviving facts"
        );
        self.preds.truncate(snap.preds);
    }

    /// A copy of the store restored to `snap`, with the high-water mark
    /// reset — indistinguishable from a store freshly built from the
    /// prefix insertion sequence.
    pub fn truncated(&self, snap: &Snapshot) -> FactStore<T> {
        let mut out = self.clone();
        out.restore(snap);
        out.peak_facts = out.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store2() -> (FactStore<u32>, PredId, PredId) {
        let mut s = FactStore::new();
        let e = s.register_pred(2);
        let p = s.register_pred(1);
        (s, e, p)
    }

    #[test]
    fn insert_dedups_and_indexes() {
        let (mut s, e, p) = store2();
        assert_eq!(s.insert(e, &[10, 20]), Some(0));
        assert_eq!(s.insert(e, &[10, 20]), None);
        assert_eq!(s.insert(e, &[20, 30]), Some(1));
        assert_eq!(s.insert(p, &[10]), Some(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.lookup(e, &[10, 20]), Some(0));
        assert_eq!(s.lookup(e, &[30, 10]), None);
        assert!(s.lookup(p, &[20, 30]).is_none());
        assert_eq!(s.with_pred(e), &[0, 1]);
        assert_eq!(s.with_pred(p), &[2]);
        assert_eq!(s.with_pred_pos_term(e, 0, 20), &[1]);
        assert_eq!(s.with_pred_pos_term(e, 1, 20), &[0]);
        assert_eq!(s.with_pred_pos_term(e, 0, 99), &[] as &[u32]);
        assert_eq!(s.domain(), &[10, 20, 30]);
        assert_eq!(s.args(0), &[10, 20]);
        assert_eq!(s.pred_of(2), p);
    }

    #[test]
    fn tuples_are_shared_across_preds() {
        let (mut s, e, _) = store2();
        let q = s.register_pred(2);
        s.insert(e, &[1, 2]);
        s.insert(q, &[1, 2]);
        assert_eq!(s.tuple_of(0), s.tuple_of(1));
        assert_eq!(s.stats().tuples, 1);
        assert_eq!(s.stats().facts, 2);
    }

    #[test]
    fn stats_count_logical_bytes() {
        let (mut s, e, _) = store2();
        s.insert(e, &[1, 2]);
        s.insert(e, &[2, 3]);
        let st = s.stats();
        assert_eq!(st.facts, 2);
        assert_eq!(st.peak_facts, 2);
        assert_eq!(st.tuples, 2);
        assert_eq!(st.postings, 4);
        assert_eq!(st.index_keys, 4);
        assert_eq!(st.bytes_facts, 16);
        // rows 8 + postings 16 + keys 4*20 + dedup 24
        assert_eq!(st.bytes_index, 8 + 16 + 80 + 24);
        // data 16 + ends 8 + intern 24
        assert_eq!(st.bytes_tuples, 16 + 8 + 24);
        assert_eq!(
            st.bytes_total(),
            st.bytes_facts + st.bytes_index + st.bytes_tuples
        );
    }

    /// Restoring to a snapshot and replaying the same suffix must
    /// reproduce every observable: indices, postings, domain, stats.
    #[test]
    fn snapshot_restore_replays_suffix() {
        let (mut s, e, p) = store2();
        s.insert(e, &[1, 2]);
        let snap = s.snapshot();
        let before = s.clone();
        s.insert(e, &[2, 3]);
        s.insert(p, &[3]);
        let q = s.register_pred(1);
        s.insert(q, &[1]);
        let grown = s.clone();
        s.restore(&snap);
        assert_eq!(s.len(), before.len());
        assert_eq!(s.domain(), before.domain());
        assert_eq!(s.pred_count(), before.pred_count());
        assert_eq!(s.with_pred(e), before.with_pred(e));
        assert_eq!(
            s.with_pred_pos_term(e, 1, 2),
            before.with_pred_pos_term(e, 1, 2)
        );
        assert_eq!(s.lookup(e, &[2, 3]), None);
        // peak is kept by in-place restore...
        assert_eq!(s.stats().peak_facts, 4);
        // ...and replaying the suffix reproduces the grown state exactly.
        s.insert(e, &[2, 3]);
        s.insert(p, &[3]);
        let q2 = s.register_pred(1);
        assert_eq!(q2, q);
        s.insert(q2, &[1]);
        assert_eq!(s.stats(), grown.stats());
        assert_eq!(s.with_pred(q2), grown.with_pred(q2));
        for i in 0..s.len() {
            assert_eq!(s.args(i), grown.args(i));
            assert_eq!(s.pred_of(i), grown.pred_of(i));
        }
    }

    /// `truncated` must be indistinguishable from a store freshly built
    /// from the prefix insertions, including `peak_facts`.
    #[test]
    fn truncated_equals_fresh_rebuild() {
        let (mut s, e, p) = store2();
        s.insert(e, &[1, 2]);
        s.insert(p, &[2]);
        let snap = s.snapshot();
        s.insert(e, &[2, 1]);
        s.insert(e, &[1, 1]);
        let trunc = s.truncated(&snap);

        let (mut fresh, fe, fp) = store2();
        fresh.insert(fe, &[1, 2]);
        fresh.insert(fp, &[2]);
        assert_eq!(trunc.stats(), fresh.stats());
        assert_eq!(trunc.domain(), fresh.domain());
        assert_eq!(trunc.with_pred(e), fresh.with_pred(fe));
        // The original is untouched.
        assert_eq!(s.len(), 4);
        // Empty-prefix restore works too.
        let empty = s.truncated(&FactStore::<u32>::new().snapshot());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.pred_count(), 0);
        assert_eq!(empty.stats(), FactStore::<u32>::new().stats());
    }

    #[test]
    fn restore_uninterns_tuples() {
        let (mut s, e, _) = store2();
        s.insert(e, &[1, 2]);
        let snap = s.snapshot();
        s.insert(e, &[3, 4]);
        s.restore(&snap);
        assert_eq!(s.stats().tuples, 1);
        // Re-inserting re-interns at the same id.
        s.insert(e, &[3, 4]);
        assert_eq!(s.tuple_of(1).index(), 1);
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn restore_rejects_non_prefix() {
        let (mut s, e, _) = store2();
        s.insert(e, &[1, 2]);
        let snap = s.snapshot();
        s.restore(&FactStore::<u32>::new().snapshot());
        s.restore(&snap);
    }
}
