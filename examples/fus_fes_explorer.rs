//! Explorer for the FUS/FES landscape (Sections 5, 6, 8): classify the
//! paper's zoo by the engine's termination probes and measure the
//! uniformity constant `c_{T,D}` that the FUS/FES conjecture is about.
//!
//! Run with `cargo run --release --example fus_fes_explorer`.

use query_rewritability::chase::{all_instances_termination, core_termination, CoreTermBudget};
use query_rewritability::classes::{is_linear, is_sticky, is_weakly_acyclic};
use query_rewritability::core::fusfes::{theorem4_certificate, uniform_bound_profile};
use query_rewritability::core::theories::{ex23, ex28, t_a, t_p};
use query_rewritability::prelude::*;

fn e_path(n: usize) -> Instance {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(v{i}, v{}).\n", i + 1));
    }
    parse_instance(&src).expect("path parses")
}

fn main() {
    let budget = CoreTermBudget::default();

    println!("== termination probes on e(a,b)-style instances ==\n");
    let zoo: Vec<(&str, Theory, Instance)> = vec![
        (
            "T_a  (Ex. 1)",
            t_a(),
            parse_instance("human(abel).").unwrap(),
        ),
        ("T_p  (Ex. 12)", t_p(), e_path(1)),
        ("Ex. 23", ex23(), e_path(1)),
        ("Ex. 28 (K=3)", ex28(3), parse_instance("e3(a,b).").unwrap()),
    ];
    for (name, theory, db) in &zoo {
        let ait = all_instances_termination(theory, db, 12);
        let fes = core_termination(theory, db, budget);
        println!("{name}");
        println!(
            "  linear: {:<5} sticky: {:<5} weakly acyclic: {}",
            is_linear(theory),
            is_sticky(theory),
            is_weakly_acyclic(theory)
        );
        println!(
            "  all-instances termination: {}",
            ait.map_or("no fixpoint within 12 rounds".into(), |n| format!(
                "fixpoint at round {n}"
            ))
        );
        match fes.depth() {
            Some(c) => println!("  core termination: certified with c_{{T,D}} = {c}"),
            None => println!("  core termination: no certificate found (likely not FES)"),
        }
        println!();
    }

    println!("== the uniformity constant across growing instances (Obs. 27) ==\n");
    let family: Vec<Instance> = (1..=6).map(e_path).collect();
    let p23 = uniform_bound_profile(&ex23(), &family, budget);
    println!("Ex. 23 (BDD + FES + local) over paths 1..6:");
    for (size, c) in &p23.per_instance {
        println!(
            "  |D| = {size}: c_{{T,D}} = {}",
            c.map_or("-".into(), |c| c.to_string())
        );
    }
    println!(
        "  flat: {} — the UBDD signature Theorem 4 predicts for local FES theories\n",
        p23.is_flat()
    );

    println!("Ex. 28 truncations (BDD + FES, but the union is not UBDD):");
    for k in 2..=5usize {
        let db = parse_instance(&format!("e{k}(a,b).")).unwrap();
        let p = uniform_bound_profile(
            &ex28(k),
            &[db],
            CoreTermBudget {
                max_depth: 8,
                lookahead: 2,
                max_facts: 100_000,
            },
        );
        println!(
            "  K = {k}: c = {}",
            p.per_instance[0].1.map_or("-".into(), |c| c.to_string())
        );
    }
    println!("  the constant tracks K, so no single c_T works for the infinite union.\n");

    println!("== a Theorem-4 certificate, constructively ==\n");
    let db = e_path(4);
    let (m, n) = theorem4_certificate(&ex23(), &db, 2, budget).expect("local + FES");
    println!("D = {db}");
    println!("found M |= T with D ⊆ M ⊆ Ch_{n}(T,D):");
    println!("M = {m}");
}
