//! Criterion micro-benchmarks for the chase engine (E11's performance
//! side): semi-naive vs naive evaluation, Datalog vs existential loads,
//! and the `T_d` grid chase of E1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qr_bench::experiments::e11_chase_engine::random_graph;
use qr_chase::{chase, chase_naive, ChaseBudget};
use qr_core::theories::{green_path, t_a, t_d};
use qr_syntax::{parse_instance, parse_theory};

fn bench_transitive_closure(c: &mut Criterion) {
    let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
    let mut group = c.benchmark_group("chase/transitive_closure");
    for (n, m) in [(20usize, 35usize), (40, 70)] {
        let db = random_graph(n, m, 42);
        let budget = ChaseBudget {
            max_rounds: 16,
            max_facts: 1_000_000,
        };
        group.bench_with_input(
            BenchmarkId::new("semi_naive", format!("G({n},{m})")),
            &db,
            |b, db| b.iter(|| chase(&theory, db, budget)),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("G({n},{m})")),
            &db,
            |b, db| b.iter(|| chase_naive(&theory, db, budget)),
        );
    }
    group.finish();
}

fn bench_existential_chain(c: &mut Criterion) {
    let theory = t_a();
    let db = parse_instance("human(abel). human(cain). human(eve).").unwrap();
    let mut group = c.benchmark_group("chase/mother_chain");
    for depth in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| chase(&theory, &db, ChaseBudget::rounds(d)))
        });
    }
    group.finish();
}

fn bench_td_grid(c: &mut Criterion) {
    let theory = t_d();
    let mut group = c.benchmark_group("chase/t_d_grid");
    group.sample_size(10);
    for n in [1usize, 2] {
        let (db, _, _) = green_path(1 << n, "bench");
        let depth = 2 * n + 1;
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| {
                chase(
                    &theory,
                    db,
                    ChaseBudget {
                        max_rounds: depth,
                        max_facts: 1_000_000,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_existential_chain,
    bench_td_grid
);
criterion_main!(benches);
