//! **E8 — Theorem 4 / Observation 27 / Example 28**: the FUS/FES picture.
//!
//! * Exercise 23's theory is BDD + FES (and local): the per-instance
//!   constant `c_{T,D}` is **flat** across growing instances — the UBDD
//!   signature Theorem 4 predicts.
//! * `T_p` (Exercise 12/22) is BDD but not FES: no certificate exists.
//! * The Example 28 truncations are BDD + FES for every `K`, but
//!   `c_T(K) = K` grows — so the infinite union has no uniform bound,
//!   which is why the conjecture needs finite theories.

use std::time::Instant;

use qr_chase::core_term::CoreTermBudget;
use qr_core::fusfes::uniform_bound_profile;
use qr_core::theories::{ex23, ex28, t_p};
use qr_syntax::{parse_instance, Instance};

use crate::Table;

/// An `e`-path of `n` edges.
pub fn e_path(n: usize) -> Instance {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(q{i}, q{}).\n", i + 1));
    }
    parse_instance(&src).expect("path parses")
}

/// The E8 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E8  Thm 4 / Obs. 27 / Ex. 28 — uniform chase bounds c_{T,D}",
        "Ex.23: flat c=2 (UBDD); T_p: no certificates (not FES); Ex.28: c grows with K",
        &["theory", "instance", "|D|", "c_{T,D}", "ms"],
    );
    let budget = CoreTermBudget::default();
    for n in [1usize, 2, 4, 6, 8] {
        let t0 = Instant::now();
        let p = uniform_bound_profile(&ex23(), &[e_path(n)], budget);
        t.row(vec![
            "Ex.23 (FES, local)".into(),
            format!("path {n}"),
            n.to_string(),
            p.per_instance[0].1.map_or("none".into(), |c| c.to_string()),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    for n in [1usize, 3, 5] {
        let t0 = Instant::now();
        let p = uniform_bound_profile(&t_p(), &[e_path(n)], budget);
        t.row(vec![
            "T_p (BDD, not FES)".into(),
            format!("path {n}"),
            n.to_string(),
            p.per_instance[0].1.map_or("none".into(), |c| c.to_string()),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    for k in 2..=5usize {
        let t0 = Instant::now();
        let db = parse_instance(&format!("e{k}(a, b).")).expect("parses");
        let p = uniform_bound_profile(
            &ex28(k),
            &[db],
            CoreTermBudget {
                max_depth: 8,
                lookahead: 2,
                max_facts: 100_000,
            },
        );
        t.row(vec![
            format!("Ex.28 truncation K={k}"),
            "single E_K edge".into(),
            "1".into(),
            p.per_instance[0].1.map_or("none".into(), |c| c.to_string()),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_core::fusfes::theorem4_certificate;

    #[test]
    fn flat_vs_growing() {
        let budget = CoreTermBudget::default();
        let flat = uniform_bound_profile(&ex23(), &[e_path(2), e_path(5)], budget);
        assert!(flat.is_flat() && flat.all_certified());
        let none = uniform_bound_profile(&t_p(), &[e_path(2)], budget);
        assert!(!none.all_certified());
    }

    #[test]
    fn theorem4_certificate_on_paths() {
        let (m, n) = theorem4_certificate(&ex23(), &e_path(3), 2, CoreTermBudget::default())
            .expect("certificate");
        assert!(e_path(3).subset_of(&m));
        assert!(n <= 2);
    }
}
