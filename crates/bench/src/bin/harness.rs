//! Prints every experiment table of DESIGN.md (E1-E12), streaming each as
//! it completes.
//!
//! Usage: `cargo run -p qr-bench --release --bin harness [--json]
//! [--threads N] [e01 e07 ...]`
//!
//! With no experiment arguments all experiments run in order. With
//! `--json`, per-experiment wall times plus the chase engine's per-round
//! counters (the E11 workloads re-run under [`qr_chase::ChaseStats`]) are
//! written to `BENCH_chase.json` in the current directory. `--threads N`
//! sizes the worker pool the parallel engines run on (equivalent to
//! setting `QR_THREADS=N`); the default comes from `QR_THREADS` or the
//! machine's available parallelism. Thread count never changes any
//! counter or table value — only wall times.

use qr_bench::experiments;
use qr_bench::report::{self, ExperimentTiming};
use qr_exec::Executor;

fn main() {
    let mut filters: Vec<String> = std::env::args()
        .skip(1)
        .map(|s| s.to_ascii_lowercase())
        .collect();
    let json = filters.iter().any(|f| f == "--json");
    filters.retain(|f| f != "--json");
    if let Some(i) = filters.iter().position(|f| f == "--threads") {
        let n = filters
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            });
        filters.drain(i..=i + 1);
        // Experiments build their executors via `Executor::from_env`, so
        // the flag is surfaced to them through the env override.
        std::env::set_var("QR_THREADS", n.to_string());
    }
    let exec = Executor::from_env();
    eprintln!("worker pool: {} thread(s)", exec.threads());

    let mut timings: Vec<ExperimentTiming> = Vec::new();
    for (id, build) in experiments::all() {
        if !filters.is_empty() && !filters.iter().any(|f| f == id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = build();
        let wall = t0.elapsed();
        println!("{table}   [{id} total {wall:?}]\n");
        timings.push(ExperimentTiming {
            id: id.to_owned(),
            wall_ms: wall.as_secs_f64() * 1e3,
        });
    }

    if json {
        let runs = experiments::e11_chase_engine::stats_runs(&exec);
        let rendered = report::render_json(&timings, &runs);
        let path = "BENCH_chase.json";
        match std::fs::write(path, rendered) {
            Ok(()) => println!("wrote {path} ({} chase runs)", runs.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
