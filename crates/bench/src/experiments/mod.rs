//! The per-experiment modules (see `DESIGN.md` §4 for the index).

pub mod e01_td_grid;
pub mod e02_td_support;
pub mod e03_marked_process;
pub mod e04_sticky_nonlocal;
pub mod e05_tc_bdlocal;
pub mod e06_ex41;
pub mod e07_linear_local;
pub mod e08_fusfes;
pub mod e09_tdk;
pub mod e10_termination;
pub mod e11_chase_engine;
pub mod e12_rewrite_equiv;
pub mod e13_normalization;
pub mod e14_exercises;

use crate::Table;
use qr_exec::Executor;

/// A table-producing experiment entry point. Experiments take the
/// harness-built [`Executor`] so an explicit `--threads N` reaches every
/// parallel stage without mutating process environment.
pub type ExperimentFn = fn(&Executor) -> Table;

/// The experiments, as `(id, constructor)` pairs so callers can stream
/// results as they are produced.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("e01", e01_td_grid::table),
        ("e02", e02_td_support::table),
        ("e03", e03_marked_process::table),
        ("e04", e04_sticky_nonlocal::table),
        ("e05", e05_tc_bdlocal::table),
        ("e06", e06_ex41::table),
        ("e07", e07_linear_local::table),
        ("e08", e08_fusfes::table),
        ("e09", e09_tdk::table),
        ("e10", e10_termination::table),
        ("e11", e11_chase_engine::table),
        ("e12", e12_rewrite_equiv::table),
        ("e13", e13_normalization::table),
        ("e14", e14_exercises::table),
    ]
}

/// Runs every experiment, returning the tables in order.
pub fn run_all(exec: &Executor) -> Vec<Table> {
    all().into_iter().map(|(_, f)| f(exec)).collect()
}
