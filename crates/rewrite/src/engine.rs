//! Saturation: computing `rew(ψ)` by exhaustive piece rewriting with
//! containment-based subsumption (Theorem 1 of the paper).
//!
//! # Parallel saturation
//!
//! The loop runs on [`Executor::pipeline_ordered`]: the piece rewritings
//! (and their cores) of every queued query are generated speculatively on
//! the worker pool while the caller thread merges results in exact FIFO
//! order against the accumulated set. Subsumption checks, evictions,
//! budget accounting and tracing all happen at merge time, so a parallel
//! run makes the same decisions in the same order as the sequential loop;
//! dropping (uncounted) the candidates of items evicted earlier in the
//! merge reproduces the sequential aliveness check verbatim. Because the
//! FIFO queue enqueues descendants after everything already queued,
//! generation for BFS window *i+1* starts as soon as its queries are
//! accepted — overlapping with the merge of the rest of window *i* and
//! hiding merge latency — without a barrier per window. A barrier variant
//! ([`SaturationMode::Barrier`]) is kept for benchmarking; both engines
//! share one merge core, so every counter in [`RewriteStats`] is
//! identical across modes and thread counts.
//!
//! Accepted disjuncts are canonically renamed on acceptance: fresh
//! variable names minted during unification embed a global counter that
//! parallel generation advances in schedule-dependent order, so without
//! the renaming, saturation output would differ textually between thread
//! counts even though the sets are isomorphic.

use std::collections::{HashSet, VecDeque};
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qr_exec::Executor;
use qr_hom::containment::contains;
use qr_hom::kernel::{HomKernel, HomStats, QueryEntry};
use qr_syntax::{ConjunctiveQuery, Symbol, Theory, Ucq, Var};

use crate::stats::{RewriteStats, WindowStats};
use crate::unify::piece_rewritings;

/// Resource limits for the saturation loop.
#[derive(Clone, Copy, Debug)]
pub struct RewriteBudget {
    /// Maximum number of queries kept in the rewriting set.
    pub max_queries: usize,
    /// Maximum number of candidate queries generated overall.
    pub max_generated: usize,
    /// Candidates larger than this many atoms are discarded. Discards are
    /// reported in [`Rewriting::oversized_discarded`] and make the outcome
    /// [`RewriteOutcome::AtomCapped`] (not [`RewriteOutcome::Budget`]),
    /// since a run whose only losses are atom-cap discards did saturate
    /// everything under the cap.
    pub max_atoms: usize,
}

impl Default for RewriteBudget {
    fn default() -> Self {
        RewriteBudget {
            max_queries: 512,
            max_generated: 20_000,
            max_atoms: 48,
        }
    }
}

/// Whether saturation finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewriteOutcome {
    /// The rewriting set is saturated: it **is** `rew(ψ)` (finite, minimal
    /// up to the containment pruning) — a witness of BDD behaviour of the
    /// theory on this query.
    Complete,
    /// Saturated except for candidates above `max_atoms`, which were
    /// discarded without exploring their descendants: the set is complete
    /// *modulo the atom cap* — typical for divergent theories whose
    /// rewritings grow without bound, where no finite budget completes.
    AtomCapped,
    /// Budget exhausted (`max_generated` or `max_queries` hit with work
    /// still queued): the returned set is sound but possibly incomplete —
    /// divergence evidence.
    Budget,
}

/// Rejection of inputs outside the engine's fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// The theory contains a rule with an empty or `dom`-scoped body; such
    /// theories (e.g. the paper's `T_d`) are handled by the marked-query
    /// process in `qr-core`, not by generic piece rewriting.
    BuiltinBody {
        /// Rendering of the offending rule.
        rule: String,
    },
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::BuiltinBody { rule } => {
                write!(
                    f,
                    "rule with builtin body unsupported by piece rewriting: {rule}"
                )
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// The result of a rewriting run.
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The rewriting set (each disjunct core-minimized; mutually
    /// incomparable under containment).
    pub ucq: Ucq,
    /// Saturated, atom-capped, or budget-limited.
    pub outcome: RewriteOutcome,
    /// Number of candidate queries generated.
    pub generated: usize,
    /// Candidates discarded for exceeding `max_atoms` (reported separately
    /// from budget exhaustion so callers can tell "complete modulo the atom
    /// cap" from "ran out of budget").
    pub oversized_discarded: usize,
    /// Maximum rewriting-step depth reached.
    pub depth: usize,
    /// Per-window saturation counters and wall splits.
    pub stats: RewriteStats,
    /// Homomorphism-kernel counters for this run (the run uses a private
    /// [`HomKernel`], so the numbers describe exactly this saturation).
    /// The cache/prefilter counters (`freezes` through `components`) are
    /// deterministic across thread counts and modes; the search and core
    /// counters depend on scheduling (early-exiting parallel sweeps) and
    /// are only meaningful for sequential runs.
    pub hom: HomStats,
}

impl Rewriting {
    /// The paper's rewriting-size measure `rs_T(ψ)`: the maximal number of
    /// atoms in a disjunct.
    pub fn rs(&self) -> usize {
        self.ucq.max_disjunct_size()
    }

    /// `true` iff saturation completed.
    pub fn is_complete(&self) -> bool {
        self.outcome == RewriteOutcome::Complete
    }

    /// Theorem 1's minimality condition: no disjunct contains another
    /// (pairwise containment-incomparable). The saturation loop maintains
    /// this invariant; this re-checks it from scratch.
    pub fn is_minimal(&self) -> bool {
        let ds = self.ucq.disjuncts();
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                if i != j && contains(&ds[i], &ds[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// The accumulated rewriting set. Every kept query carries its cached
/// [`QueryEntry`] (frozen instance, compiled component plans, prefilter
/// profile), so the subsumption and eviction sweeps pay no per-check
/// setup — the kernel's predicate-set and anchored-position prefilters
/// replace the engine-local signature index this set used to maintain.
/// Entries are tombstoned rather than removed so the surviving queries
/// keep their insertion order — the order the historical linear-scan
/// implementation produced.
struct KeptSet {
    entries: Vec<KeptEntry>,
    alive: usize,
}

struct KeptEntry {
    query: ConjunctiveQuery,
    entry: Arc<QueryEntry>,
    alive: bool,
}

impl KeptSet {
    fn new() -> KeptSet {
        KeptSet {
            entries: Vec::new(),
            alive: 0,
        }
    }

    fn len(&self) -> usize {
        self.alive
    }

    fn push(&mut self, query: ConjunctiveQuery, entry: Arc<QueryEntry>) {
        self.entries.push(KeptEntry {
            query,
            entry,
            alive: true,
        });
        self.alive += 1;
    }

    fn contains_query(&self, q: &ConjunctiveQuery) -> bool {
        self.entries.iter().any(|e| e.alive && e.query == *q)
    }

    /// The alive entries' kernel handles, in insertion order.
    fn alive_entries(&self) -> Vec<&Arc<QueryEntry>> {
        self.entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| &e.entry)
            .collect()
    }

    /// The alive entries' kernel handles with their slot indices, in
    /// insertion order (for eviction sweeps that must kill by index).
    fn alive_indexed(&self) -> (Vec<usize>, Vec<&Arc<QueryEntry>>) {
        let mut idxs = Vec::with_capacity(self.alive);
        let mut refs = Vec::with_capacity(self.alive);
        for (i, e) in self.entries.iter().enumerate() {
            if e.alive {
                idxs.push(i);
                refs.push(&e.entry);
            }
        }
        (idxs, refs)
    }

    fn kill(&mut self, idx: usize) {
        if std::mem::take(&mut self.entries[idx].alive) {
            self.alive -= 1;
        }
    }

    fn into_queries(self) -> Vec<ConjunctiveQuery> {
        self.entries
            .into_iter()
            .filter(|e| e.alive)
            .map(|e| e.query)
            .collect()
    }
}

/// Renames existential variables to `U0, U1, …` in variable-index order,
/// keeping answer-variable names (skipping any `U<i>` an answer variable
/// already uses). Structure — atom order, variable indices — is
/// untouched, so piece enumeration over the renamed query is unaffected;
/// only the schedule-dependent fresh names disappear.
fn canonical_named(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let answer: HashSet<Var> = q.answer_vars().iter().copied().collect();
    let reserved: HashSet<&str> = q
        .answer_vars()
        .iter()
        .map(|v| q.var_name(*v).as_str())
        .collect();
    let mut names = q.var_names().to_vec();
    let mut next = 0usize;
    for (i, slot) in names.iter_mut().enumerate() {
        if answer.contains(&Var(i as u32)) {
            continue;
        }
        let name = loop {
            let cand = format!("U{next}");
            next += 1;
            if !reserved.contains(cand.as_str()) {
                break cand;
            }
        };
        *slot = Symbol::intern(&name);
    }
    ConjunctiveQuery::new(q.answer_vars().to_vec(), q.atoms().to_vec(), names)
}

/// A speculatively generated candidate from one piece rewriting of a
/// queued query.
enum Generated {
    /// The raw rewriting exceeded `max_atoms`: counted against the budget
    /// at merge time, never core-minimized (matching the sequential loop,
    /// which skips the core for oversized candidates).
    Oversized,
    /// Core-minimized, canonically renamed candidate.
    Cand(ConjunctiveQuery),
}

/// How the saturation loop schedules generation against the merge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SaturationMode {
    /// Speculative pipelining on [`Executor::pipeline_ordered`]: window
    /// *i+1* generates while window *i* merges. The default.
    Pipelined,
    /// One `Executor::map` per BFS window with a barrier before the merge
    /// (the pre-pipelining engine, kept for benchmarking the overlap win).
    Barrier,
}

/// Computes a UCQ rewriting of `query` under `theory` (see module docs).
pub fn rewrite(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        &Executor::sequential(),
        SaturationMode::Pipelined,
        &mut |_, _| {},
    )
}

/// [`rewrite`] with candidate generation and containment sweeps scheduled
/// on `exec`'s worker pool. Deterministic: the result — disjuncts, their
/// renderings, `generated`, `depth`, outcome, every stats counter — is
/// identical to the sequential run for every thread count.
pub fn rewrite_with(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        exec,
        SaturationMode::Pipelined,
        &mut |_, _| {},
    )
}

/// [`rewrite_with`] with an explicit [`SaturationMode`] — the harness uses
/// this to measure the pipelined engine against the barrier engine on the
/// same workloads. Counters are mode-independent; only wall splits differ.
pub fn rewrite_with_mode(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mode: SaturationMode,
) -> Result<Rewriting, RewriteError> {
    saturate(theory, query, budget, exec, mode, &mut |_, _| {})
}

/// Like [`rewrite`], invoking `trace(depth, query)` for every query accepted
/// into the rewriting set (useful for experiments and debugging).
pub fn rewrite_with_trace(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    mut trace: impl FnMut(usize, &ConjunctiveQuery),
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        &Executor::sequential(),
        SaturationMode::Pipelined,
        &mut trace,
    )
}

/// [`rewrite_with_trace`] on an explicit executor: the trace stream is
/// byte-identical to the sequential one at every thread count (acceptances
/// happen at merge time, in merge order).
pub fn rewrite_with_trace_on(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mut trace: impl FnMut(usize, &ConjunctiveQuery),
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        exec,
        SaturationMode::Pipelined,
        &mut trace,
    )
}

/// The merge core shared by both saturation modes: all kept-set decisions
/// — aliveness, budget accounting, subsumption, eviction, acceptance,
/// tracing, window bookkeeping — live here, so the pipelined and barrier
/// engines are identical-by-construction in everything but scheduling.
struct Merger<'a> {
    budget: RewriteBudget,
    exec: &'a Executor,
    kernel: &'a HomKernel,
    trace: &'a mut dyn FnMut(usize, &ConjunctiveQuery),
    set: KeptSet,
    generated: usize,
    oversized: usize,
    depth_reached: usize,
    truncated: bool,
    stats: RewriteStats,
    cur: WindowStats,
    /// Sequence number of the next item to merge (items are numbered in
    /// submission order, exactly the pipeline's sequence numbers).
    merge_seq: usize,
    /// Items submitted so far (seed + every accepted candidate).
    submitted: usize,
    /// Last sequence number belonging to the window being merged.
    window_last_seq: usize,
}

impl<'a> Merger<'a> {
    fn new(
        budget: RewriteBudget,
        exec: &'a Executor,
        kernel: &'a HomKernel,
        trace: &'a mut dyn FnMut(usize, &ConjunctiveQuery),
    ) -> Merger<'a> {
        Merger {
            budget,
            exec,
            kernel,
            trace,
            set: KeptSet::new(),
            generated: 0,
            oversized: 0,
            depth_reached: 0,
            truncated: false,
            stats: RewriteStats {
                threads: exec.threads(),
                windows: Vec::new(),
            },
            cur: WindowStats {
                window: 0,
                items: 1,
                ..WindowStats::default()
            },
            merge_seq: 0,
            submitted: 1,
            window_last_seq: 0,
        }
    }

    /// Closes the window being accumulated (records the kept-set size).
    fn close_window(&mut self) {
        self.cur.kept = self.set.len();
        self.stats.windows.push(std::mem::take(&mut self.cur));
    }

    /// Merges one item's speculative generation results in submission
    /// order. `Break` means a budget stop: the caller must stop merging.
    /// Accepted candidates are appended to `out` for resubmission.
    fn merge_item(
        &mut self,
        q: &ConjunctiveQuery,
        depth: usize,
        gens: &[Generated],
        gen_wall: Duration,
        waited: Duration,
        out: &mut Vec<(ConjunctiveQuery, usize)>,
    ) -> ControlFlow<()> {
        let seq = self.merge_seq;
        self.merge_seq += 1;
        if seq > self.window_last_seq {
            // First item of the next BFS window: everything submitted and
            // not yet merged was queued together, exactly the batch a
            // barrier engine would drain now.
            self.close_window();
            self.cur.window = self.stats.windows.len();
            self.cur.items = self.submitted - seq;
            self.window_last_seq = self.submitted - 1;
        }
        self.cur.gen_wall += gen_wall;
        self.cur.wait_wall += waited;
        let t0 = Instant::now();
        let flow = self.merge_item_decisions(q, depth, gens, out);
        self.cur.merge_wall += t0.elapsed();
        self.submitted += out.len();
        flow
    }

    fn merge_item_decisions(
        &mut self,
        q: &ConjunctiveQuery,
        depth: usize,
        gens: &[Generated],
        out: &mut Vec<(ConjunctiveQuery, usize)>,
    ) -> ControlFlow<()> {
        // The query may have been evicted by a more general arrival; its
        // speculative candidates are dropped uncounted, exactly as the
        // historical sequential loop never generated for queries that
        // failed its aliveness check.
        if !self.set.contains_query(q) {
            self.cur.dead_skipped += 1;
            return ControlFlow::Continue(());
        }
        self.cur.merged += 1;
        for g in gens {
            self.generated += 1;
            self.cur.generated += 1;
            if self.generated > self.budget.max_generated {
                self.truncated = true;
                return ControlFlow::Break(());
            }
            let cand = match g {
                Generated::Oversized => {
                    self.oversized += 1;
                    self.cur.oversized += 1;
                    continue;
                }
                Generated::Cand(c) => c,
            };
            // The candidate's kernel entry: frozen once here on the merge
            // thread (or fetched from the freeze cache — structurally
            // repeated candidates are common), then shared by the
            // subsumption sweep, the eviction sweep, and the kept set.
            let cand_entry = self.kernel.entry(cand);
            // Subsumed: some kept query already covers it (whenever the
            // candidate holds, the kept one does). The kernel prefilters
            // the kept entries before the parallel sweep.
            if self
                .kernel
                .subsumed_by_any(self.exec, &cand_entry, &self.set.alive_entries())
            {
                self.cur.subsumption_hits += 1;
                continue;
            }
            // Evict kept queries covered by the candidate.
            let dead: Vec<usize> = {
                let (idxs, refs) = self.set.alive_indexed();
                self.kernel
                    .covered_by(self.exec, &refs, &cand_entry)
                    .into_iter()
                    .zip(&idxs)
                    .filter_map(|(covered, idx)| covered.then_some(*idx))
                    .collect()
            };
            let evicted = dead.len();
            for idx in dead {
                self.set.kill(idx);
            }
            self.cur.evictions += evicted;
            if self.set.len() >= self.budget.max_queries {
                self.truncated = true;
                // Soundness at the truncation point: if this candidate
                // evicted anything, it must replace the victims' coverage
                // before we stop — breaking between the kills and the push
                // would return a UCQ missing the evicted disjuncts with
                // nothing standing in for them. (With the push guarded by
                // `len >= max_queries`, the set can only be at capacity
                // here with zero victims killed unless it was over
                // capacity to begin with — but the rescue keeps the break
                // sound for every budget, including `max_queries = 0`,
                // where the unguarded seed push overflows.)
                if evicted > 0 {
                    self.depth_reached = self.depth_reached.max(depth + 1);
                    (self.trace)(depth + 1, cand);
                    self.set.push(cand.clone(), cand_entry);
                    self.cur.accepted += 1;
                }
                return ControlFlow::Break(());
            }
            self.depth_reached = self.depth_reached.max(depth + 1);
            (self.trace)(depth + 1, cand);
            self.set.push(cand.clone(), cand_entry);
            self.cur.accepted += 1;
            out.push((cand.clone(), depth + 1));
        }
        ControlFlow::Continue(())
    }
}

fn saturate(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mode: SaturationMode,
    trace: &mut dyn FnMut(usize, &ConjunctiveQuery),
) -> Result<Rewriting, RewriteError> {
    for r in theory.rules() {
        if r.has_builtin_body() {
            return Err(RewriteError::BuiltinBody { rule: r.render() });
        }
    }

    // One private kernel per run: the caches warm up on this saturation's
    // own queries and the counters describe exactly this run.
    let kernel = HomKernel::new();
    let seed = canonical_named(&kernel.query_core(query));
    trace(0, &seed);
    let seed_entry = kernel.entry(&seed);
    let mut merger = Merger::new(budget, exec, &kernel, trace);
    merger.set.push(seed.clone(), seed_entry);

    // Speculative generation: piece rewritings and cores of one queued
    // query, a pure per-item function scheduled on the worker pool. Core
    // minimization shares the kernel's core cache across workers (the
    // fold touches no entry-cache counters, so the deterministic stats
    // stay schedule-independent).
    let generate = |q: &ConjunctiveQuery| -> (Vec<Generated>, Duration) {
        let t0 = Instant::now();
        let mut out = Vec::new();
        for rule in theory.rules() {
            for pu in piece_rewritings(q, rule) {
                if pu.result.size() > budget.max_atoms {
                    out.push(Generated::Oversized);
                } else {
                    out.push(Generated::Cand(canonical_named(
                        &kernel.query_core(&pu.result),
                    )));
                }
            }
        }
        (out, t0.elapsed())
    };

    match mode {
        SaturationMode::Pipelined => {
            exec.pipeline_ordered(
                vec![(seed, 0usize)],
                |(q, _)| generate(q),
                |(q, depth), (gens, gen_wall), ctx| {
                    let mut out = Vec::new();
                    let flow =
                        merger.merge_item(&q, depth, &gens, gen_wall, ctx.waited(), &mut out);
                    for item in out {
                        ctx.submit(item);
                    }
                    flow
                },
            );
        }
        SaturationMode::Barrier => {
            let mut queue: VecDeque<(ConjunctiveQuery, usize)> = VecDeque::new();
            queue.push_back((seed, 0));
            'outer: while !queue.is_empty() {
                let batch: Vec<(ConjunctiveQuery, usize)> = queue.drain(..).collect();
                let t0 = Instant::now();
                let gens = exec.map(&batch, |(q, _)| generate(q));
                let gen_phase = t0.elapsed();
                for (i, ((q, depth), (g, gen_wall))) in batch.iter().zip(&gens).enumerate() {
                    // The merge sat out the whole generation phase before
                    // its first item; charge that stall to the window.
                    let waited = if i == 0 { gen_phase } else { Duration::ZERO };
                    let mut out = Vec::new();
                    let flow = merger.merge_item(q, *depth, g, *gen_wall, waited, &mut out);
                    queue.extend(out);
                    if flow.is_break() {
                        break 'outer;
                    }
                }
            }
        }
    }
    merger.close_window();

    let outcome = if merger.truncated {
        RewriteOutcome::Budget
    } else if merger.oversized > 0 {
        RewriteOutcome::AtomCapped
    } else {
        RewriteOutcome::Complete
    };
    let Merger {
        set,
        generated,
        oversized,
        depth_reached,
        stats,
        ..
    } = merger;
    Ok(Rewriting {
        ucq: Ucq::new(set.into_queries()),
        outcome,
        generated,
        oversized_discarded: oversized,
        depth: depth_reached,
        stats,
        hom: kernel.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_query, parse_theory};

    fn run(theory: &str, query: &str) -> Rewriting {
        rewrite(
            &parse_theory(theory).unwrap(),
            &parse_query(query).unwrap(),
            RewriteBudget::default(),
        )
        .unwrap()
    }

    #[test]
    fn example_1_family() {
        let r = run(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
        );
        assert!(r.is_complete());
        // mother(X,M) ∨ human(X) ∨ mother(U,X) (X a mother's child is human,
        // and humans have mothers).
        assert_eq!(r.ucq.len(), 3);
    }

    #[test]
    fn exercise_12_linear_path() {
        // T_p = e(X,Y) -> e(Y,Z) is BDD; a 2-path rewrites to a single edge.
        let r = run("e(X,Y) -> e(Y,Z).", "? :- e(A,B), e(B,C).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn longer_paths_still_one_edge() {
        let r = run("e(X,Y) -> e(Y,Z).", "? :- e(A,B), e(B,C), e(C,D), e(D,E).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn anchored_query_keeps_prefix_disjuncts() {
        // Ch(T,D) has a 2-path from A iff A touches any edge of D (every
        // element grows an infinite forward path), so the rewriting is the
        // pair of single-edge queries around A.
        let r = run("e(X,Y) -> e(Y,Z).", "?(A) :- e(A,B), e(B,C).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 2); // e(A,B) and e(B,A)
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn transitivity_diverges() {
        // Unbounded Datalog: not BDD; the engine must hit its budget.
        let r = rewrite(
            &parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap(),
            &parse_query("? :- e(a, b).").unwrap(),
            RewriteBudget {
                max_queries: 64,
                max_generated: 2_000,
                max_atoms: 12,
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RewriteOutcome::Budget);
        assert!(r.ucq.len() > 8, "paths of many lengths should appear");
    }

    #[test]
    fn t_d_is_rejected() {
        let t = parse_theory("true -> r(X,X).\ndom(X) -> r(X,Z).").unwrap();
        let q = parse_query("? :- r(A,B).").unwrap();
        let err = rewrite(&t, &q, RewriteBudget::default()).unwrap_err();
        assert!(matches!(err, RewriteError::BuiltinBody { .. }));
    }

    #[test]
    fn guarded_two_rule_theory() {
        let r = run("p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).", "? :- p(A).");
        // p(A) ∨ q(A) ∨ p(B),e(B,A) ∨ q(B),e(B,A) ∨ longer chains... p is
        // propagated along edges, so this is unbounded Datalog-ish — but
        // each new disjunct extends the chain: budget or growth expected.
        assert!(r.ucq.len() >= 2);
    }

    #[test]
    fn sticky_example_39_atomic_query() {
        // Example 39: E(x,y,y',t), R(x,t') -> ∃y'' E(x,y',y,t') — for the
        // fully existential atomic query, every rewriting step introduces an
        // e-atom, so all rewrites are subsumed by the query itself.
        let r = run("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).", "? :- e(A,B,C,D).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        // Anchoring the spectator and the color makes the r-atom matter.
        let r2 = run(
            "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
            "?(A,D) :- e(A,B,C,D).",
        );
        assert!(r2.is_complete());
        assert_eq!(r2.ucq.len(), 2);
        assert_eq!(r2.rs(), 2);
    }

    /// Every fixture the engine covers, as (label, theory, query, budget).
    fn fixtures() -> Vec<(&'static str, &'static str, &'static str, RewriteBudget)> {
        vec![
            (
                "t_a",
                "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
                "?(X) :- mother(X, M).",
                RewriteBudget::default(),
            ),
            (
                "t_p",
                "e(X,Y) -> e(Y,Z).",
                "?(A) :- e(A,B), e(B,C).",
                RewriteBudget::default(),
            ),
            (
                "ex39",
                "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
                "?(A,D) :- e(A,B,C,D).",
                RewriteBudget::default(),
            ),
            (
                "guarded",
                "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
                "? :- p(A).",
                RewriteBudget::default(),
            ),
            (
                "tc-budget",
                "e(X,Y), e(Y,Z) -> e(X,Z).",
                "? :- e(a, b).",
                RewriteBudget {
                    max_queries: 64,
                    max_generated: 2_000,
                    max_atoms: 12,
                },
            ),
        ]
    }

    fn renders(r: &Rewriting) -> Vec<String> {
        r.ucq.disjuncts().iter().map(|d| d.render()).collect()
    }

    #[test]
    fn parallel_rewrite_is_identical_to_sequential() {
        for (label, t, q, budget) in fixtures() {
            // The budget-truncation path is what matters on the divergent
            // fixture; a smaller budget exercises it at a fraction of the
            // cost.
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let seq = rewrite(&theory, &query, budget).unwrap();
            for threads in [2, 4] {
                let par = rewrite_with(&theory, &query, budget, &Executor::with_threads(threads))
                    .unwrap();
                assert_eq!(par.outcome, seq.outcome, "{label} @{threads}: outcome");
                assert_eq!(
                    par.generated, seq.generated,
                    "{label} @{threads}: generated"
                );
                assert_eq!(par.depth, seq.depth, "{label} @{threads}: depth");
                assert_eq!(
                    renders(&par),
                    renders(&seq),
                    "{label} @{threads}: saturated set"
                );
            }
        }
    }

    /// The saturated sets the pre-index, pre-parallel engine produced on
    /// these fixtures, pinned up to the canonical variable renaming:
    /// identical outcome / generated / depth, and a bijection between the
    /// disjuncts and the expected queries under [`equivalent`].
    #[test]
    fn saturated_sets_match_prechange_engine() {
        use qr_hom::containment::equivalent;
        let expected: Vec<(&str, RewriteOutcome, usize, usize, Vec<&str>)> = vec![
            (
                "t_a",
                RewriteOutcome::Complete,
                2,
                2,
                vec![
                    "?(X) :- mother(X, M).",
                    "?(X) :- human(X).",
                    "?(X) :- mother(U, X).",
                ],
            ),
            (
                "t_p",
                RewriteOutcome::Complete,
                2,
                2,
                vec!["?(A) :- e(A, B).", "?(A) :- e(B, A)."],
            ),
            (
                "ex39",
                RewriteOutcome::Complete,
                2,
                1,
                vec!["?(A,D) :- e(A,B,C,D).", "?(A,D) :- e(A,Y,B,T), r(A,D)."],
            ),
            (
                "guarded",
                RewriteOutcome::Complete,
                2,
                1,
                vec!["? :- p(A).", "? :- q(A)."],
            ),
            (
                "tc-budget",
                RewriteOutcome::Budget,
                2001,
                11,
                vec![], // pinned by shape below: chains of length 1..=12
            ),
        ];
        for ((label, t, q, budget), (elabel, outcome, generated, depth, disjuncts)) in
            fixtures().into_iter().zip(expected)
        {
            assert_eq!(label, elabel);
            let r = rewrite(&parse_theory(t).unwrap(), &parse_query(q).unwrap(), budget).unwrap();
            assert_eq!(r.outcome, outcome, "{label}: outcome");
            assert_eq!(r.generated, generated, "{label}: generated");
            assert_eq!(r.depth, depth, "{label}: depth");
            if label == "tc-budget" {
                // One chain disjunct per length 1..=12, exactly as before.
                let mut sizes: Vec<usize> = r.ucq.disjuncts().iter().map(|d| d.size()).collect();
                sizes.sort_unstable();
                assert_eq!(sizes, (1..=12).collect::<Vec<_>>(), "tc-budget: sizes");
                continue;
            }
            assert_eq!(r.ucq.len(), disjuncts.len(), "{label}: set size");
            let want: Vec<ConjunctiveQuery> =
                disjuncts.iter().map(|s| parse_query(s).unwrap()).collect();
            for w in &want {
                assert!(
                    r.ucq.disjuncts().iter().any(|d| equivalent(d, w)),
                    "{label}: missing disjunct equivalent to {}",
                    w.render()
                );
            }
            for d in r.ucq.disjuncts() {
                assert!(
                    want.iter().any(|w| equivalent(d, w)),
                    "{label}: unexpected disjunct {}",
                    d.render()
                );
            }
        }
    }

    #[test]
    fn atom_cap_only_losses_report_atom_capped() {
        // Example 41's rule grows every rewriting by one atom, so with a
        // generous generation budget the only losses are atom-cap
        // discards: saturated modulo the cap, not out of budget.
        let r = rewrite(
            &parse_theory("e(X,Y,Z), r(X,Z) -> r(Y,Z).").unwrap(),
            &parse_query("?(Y,Z) :- r(Y,Z).").unwrap(),
            RewriteBudget {
                max_queries: 512,
                max_generated: 20_000,
                max_atoms: 7,
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RewriteOutcome::AtomCapped);
        assert!(r.oversized_discarded > 0, "cap discards must be counted");
        assert_eq!(r.stats.oversized(), r.oversized_discarded);
        assert!(
            !r.is_complete(),
            "atom-capped runs are not complete rewritings"
        );
    }

    #[test]
    fn complete_runs_report_zero_oversized() {
        let r = run("e(X,Y) -> e(Y,Z).", "?(A) :- e(A,B), e(B,C).");
        assert_eq!(r.outcome, RewriteOutcome::Complete);
        assert_eq!(r.oversized_discarded, 0);
    }

    /// Strips the schedule-dependent wall splits, keeping every
    /// deterministic per-window counter.
    #[allow(clippy::type_complexity)]
    fn counter_rows(
        s: &crate::stats::RewriteStats,
    ) -> Vec<(
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
    )> {
        s.windows
            .iter()
            .map(|w| {
                (
                    w.window,
                    w.items,
                    w.merged,
                    w.dead_skipped,
                    w.generated,
                    w.subsumption_hits,
                    w.evictions,
                    w.oversized,
                    w.accepted,
                    w.kept,
                )
            })
            .collect()
    }

    #[test]
    fn stats_counters_identical_across_modes_and_threads() {
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let seq = rewrite(&theory, &query, budget).unwrap();
            // Totals reconcile with the run's headline numbers.
            assert_eq!(seq.stats.generated(), seq.generated, "{label}");
            assert_eq!(seq.stats.oversized(), seq.oversized_discarded, "{label}");
            assert_eq!(
                1 + seq.stats.accepted() - seq.stats.evictions(),
                seq.ucq.len(),
                "{label}: seed + accepted - evicted = surviving disjuncts"
            );
            assert_eq!(
                seq.stats.windows.last().unwrap().kept,
                seq.ucq.len(),
                "{label}: final window records the surviving set size"
            );
            // Sequentially the merge waits out every generation in full.
            assert_eq!(seq.stats.threads, 1, "{label}");
            for w in &seq.stats.windows {
                assert_eq!(w.overlap_wall(), Duration::ZERO, "{label}: no overlap @1");
            }
            let expect = counter_rows(&seq.stats);
            for threads in [1, 2, 4] {
                let exec = Executor::with_threads(threads);
                for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                    let r = rewrite_with_mode(&theory, &query, budget, &exec, mode).unwrap();
                    assert_eq!(
                        counter_rows(&r.stats),
                        expect,
                        "{label} @{threads} {mode:?}: window counters"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_stream_identical_across_thread_counts() {
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let mut expect = Vec::new();
            rewrite_with_trace(&theory, &query, budget, |d, cq| {
                expect.push((d, cq.render()));
            })
            .unwrap();
            for threads in [2, 4] {
                let mut seen = Vec::new();
                rewrite_with_trace_on(
                    &theory,
                    &query,
                    budget,
                    &Executor::with_threads(threads),
                    |d, cq| seen.push((d, cq.render())),
                )
                .unwrap();
                assert_eq!(seen, expect, "{label} @{threads}: trace stream");
            }
        }
    }

    #[test]
    fn signature_is_a_set_not_a_multiset() {
        // A homomorphism may collapse atoms: the 2-path maps into the
        // self-loop, even though the source uses `e` twice and the target
        // once. The kernel prefilter (which replaced the engine-local
        // signature index) must not prune this.
        let k = HomKernel::new();
        let path = parse_query("? :- e(X,Y), e(Y,Z).").unwrap();
        let selfloop = parse_query("? :- e(A,A).").unwrap();
        assert!(contains(&selfloop, &path));
        assert!(!k.prefilter_rejects_pair(&selfloop, &path));
        assert!(!k.prefilter_rejects_pair(&path, &selfloop));
        // Disjoint predicates are pruned in both directions.
        let other = parse_query("? :- f(X,Y).").unwrap();
        assert!(k.prefilter_rejects_pair(&path, &other));
        assert!(k.prefilter_rejects_pair(&other, &path));
        // Strict subset works one way only.
        let mixed = parse_query("? :- e(X,Y), f(Y,Z).").unwrap();
        assert!(!k.prefilter_rejects_pair(&mixed, &path));
        assert!(k.prefilter_rejects_pair(&path, &mixed));
    }

    /// The cache/prefilter tier of [`HomStats`] is incremented only at
    /// merge-thread points (entry acquisition, sequential prefilter
    /// passes), so it must be identical across thread counts and both
    /// saturation modes — these counters are gated in CI.
    #[test]
    fn hom_cache_counters_identical_across_modes_and_threads() {
        fn cache_tier(h: &qr_hom::HomStats) -> (u64, u64, u64, u64, u64, u64) {
            (
                h.freezes,
                h.freeze_cache_hits,
                h.plan_compiles,
                h.plan_cache_hits,
                h.prefilter_rejects,
                h.components,
            )
        }
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let seq = rewrite(&theory, &query, budget).unwrap();
            assert!(seq.hom.freezes > 0, "{label}: the kernel froze something");
            let expect = cache_tier(&seq.hom);
            for threads in [1, 2, 4] {
                let exec = Executor::with_threads(threads);
                for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                    let r = rewrite_with_mode(&theory, &query, budget, &exec, mode).unwrap();
                    assert_eq!(
                        cache_tier(&r.hom),
                        expect,
                        "{label} @{threads} {mode:?}: hom cache counters"
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_renaming_keeps_answer_names_and_structure() {
        let q = parse_query("?(X) :- mother(X, M), human(H).").unwrap();
        let c = canonical_named(&q);
        assert_eq!(c.answer_vars(), q.answer_vars());
        assert_eq!(c.atoms(), q.atoms());
        assert_eq!(c.render(), "?(X) :- mother(X,U0), human(U1)");
        // An answer variable already named like a canonical slot is skipped.
        let q2 = parse_query("?(U0) :- e(U0, Y).").unwrap();
        assert_eq!(canonical_named(&q2).render(), "?(U0) :- e(U0,U1)");
    }

    #[test]
    fn trace_sees_every_kept_query() {
        let t = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
        let q = parse_query("?(X) :- mother(X, M).").unwrap();
        let mut seen = Vec::new();
        let r = rewrite_with_trace(&t, &q, RewriteBudget::default(), |d, cq| {
            seen.push((d, cq.render()));
        })
        .unwrap();
        assert!(seen.len() >= r.ucq.len());
        assert_eq!(seen[0].0, 0);
    }
}
