//! Snapshot contract of the chase: `Chase::prefix(n)` is now an O(1)
//! storage-snapshot restore rather than an O(n) filter-and-rebuild, so
//! these tests pin the equivalence of the two on randomized runs — same
//! fact stream, same domain order, same index contents, same storage
//! stats — plus the determinism of the new memory counters across thread
//! counts.

use qr_chase::{chase, chase_with, ChaseBudget};
use qr_exec::Executor;
use qr_syntax::{parse_instance, parse_theory, Fact, Instance, Theory};
use qr_testkit::{check, Rng};

fn edge_instance(rng: &mut Rng) -> Instance {
    let n = rng.range(1, 8);
    let mut src = String::new();
    for _ in 0..n {
        let a = rng.below(5);
        let b = rng.below(5);
        src.push_str(&format!("e(w{a}, w{b}).\n"));
    }
    parse_instance(&src).unwrap()
}

fn small_theory(rng: &mut Rng) -> Theory {
    let sources = [
        "e(X,Y) -> e(Y,Z).",
        "e(X,Y), e(Y,Z) -> e(X,Z).",
        "e(X,Y) -> p(Y).\np(X) -> e(X,W).",
        "true -> r(X,X).\ndom(X) -> r(X,Z).",
        "dom(w1) -> p(w1).\np(X) -> e(X,W).",
        "e(X,Y), e(Y,Z) -> f(X,Z).\nf(X,Y), f(Y,Z) -> g(X,Z).",
    ];
    parse_theory(rng.pick::<&str>(&sources)).unwrap()
}

/// The pre-S20 `prefix` implementation: filter the fact stream by round
/// and rebuild an instance from scratch.
fn rebuilt_prefix(ch: &qr_chase::Chase, n: usize) -> Instance {
    Instance::from_facts(
        ch.instance
            .iter()
            .enumerate()
            .filter(|(i, _)| ch.round_of[*i] <= n)
            .map(|(_, f)| f.to_fact()),
    )
}

#[test]
fn snapshot_prefixes_equal_filter_rebuilt_prefixes() {
    check(
        "snapshot_prefixes_equal_filter_rebuilt_prefixes",
        60,
        |rng| {
            let theory = small_theory(rng);
            let db = edge_instance(rng);
            let budget = ChaseBudget {
                max_rounds: 4,
                max_facts: 50_000,
            };
            let ch = chase(&theory, &db, budget);
            for n in 0..=ch.rounds {
                let fast = ch.prefix(n);
                let slow = rebuilt_prefix(&ch, n);
                let ctx = format!("prefix({n}), theory {}\ndb {}", theory.render(), db);
                assert_eq!(fast, slow, "{ctx}");
                // Not just set-equal: identical streams, domain order, indexes
                // and storage stats — a restored prefix is indistinguishable
                // from an instance that never saw the later rounds.
                let ff: Vec<Fact> = fast.iter().map(|f| f.to_fact()).collect();
                let sf: Vec<Fact> = slow.iter().map(|f| f.to_fact()).collect();
                assert_eq!(ff, sf, "{ctx}");
                assert_eq!(fast.domain(), slow.domain(), "{ctx}");
                assert_eq!(fast.stats(), slow.stats(), "{ctx}");
                for f in &ff {
                    assert_eq!(fast.index_of(f), slow.index_of(f), "{ctx}");
                }
            }
            // The full-run prefix is the chase instance itself (including its
            // high-water mark, since the chase only grows).
            let full = ch.prefix(ch.rounds);
            assert_eq!(full, ch.instance);
            assert_eq!(ch.stats.peak_facts, ch.instance.len());
        },
    );
}

#[test]
fn round_snapshots_cover_every_round() {
    check("round_snapshots_cover_every_round", 40, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let ch = chase(
            &theory,
            &db,
            ChaseBudget {
                max_rounds: 4,
                max_facts: 50_000,
            },
        );
        // One snapshot per completed round plus the input load.
        assert_eq!(ch.round_snapshots.len(), ch.rounds + 1);
        assert_eq!(ch.round_snapshots[0].facts(), db.len());
        for (n, snap) in ch.round_snapshots.iter().enumerate() {
            assert_eq!(snap.facts(), ch.prefix(n).len(), "round {n}");
        }
        // Snapshot sizes are monotone (rounds only append).
        for w in ch.round_snapshots.windows(2) {
            assert!(w[0].facts() <= w[1].facts());
        }
    });
}

#[test]
fn memory_counters_are_thread_invariant() {
    check("memory_counters_are_thread_invariant", 30, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let budget = ChaseBudget {
            max_rounds: 4,
            max_facts: 50_000,
        };
        let seq = chase_with(&theory, &db, budget, &Executor::sequential());
        assert_eq!(seq.stats.peak_facts, seq.instance.len());
        assert_eq!(
            seq.stats.bytes_facts + seq.stats.bytes_index + seq.stats.bytes_tuples,
            seq.stats.bytes_total()
        );
        for threads in [2, 4] {
            let par = chase_with(&theory, &db, budget, &Executor::with_threads(threads));
            let ctx = format!("{} threads, theory {}", threads, theory.render());
            assert_eq!(seq.stats.peak_facts, par.stats.peak_facts, "{ctx}");
            assert_eq!(seq.stats.bytes_facts, par.stats.bytes_facts, "{ctx}");
            assert_eq!(seq.stats.bytes_index, par.stats.bytes_index, "{ctx}");
            assert_eq!(seq.stats.bytes_tuples, par.stats.bytes_tuples, "{ctx}");
        }
    });
}

#[test]
fn mid_chase_checkpoint_resumes_identically() {
    check("mid_chase_checkpoint_resumes_identically", 30, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let budget = ChaseBudget {
            max_rounds: 5,
            max_facts: 50_000,
        };
        let full = chase(&theory, &db, budget);
        if full.rounds == 0 {
            return;
        }
        let k = rng.range(0, full.rounds);
        let prefix = full.prefix(k);

        // Serialize the mid-run prefix and resume from the decoded bytes;
        // the resumed run must replay a control run from the un-serialized
        // prefix byte for byte (Observation 8 guarantees the *final* chase
        // is also set-equal to the uninterrupted run).
        let restored = Instance::from_bytes(&prefix.to_bytes()).expect("decode");
        assert_eq!(restored, prefix);
        let control = chase(&theory, &prefix, budget);
        let resumed = chase(&theory, &restored, budget);
        let cf: Vec<Fact> = control.instance.iter().map(|f| f.to_fact()).collect();
        let rf: Vec<Fact> = resumed.instance.iter().map(|f| f.to_fact()).collect();
        assert_eq!(cf, rf, "theory {}\ndb {}", theory.render(), db);
        assert_eq!(control.round_of, resumed.round_of);
        assert_eq!(control.instance.stats(), resumed.instance.stats());
        // Set-equality with the uninterrupted run: Ch(T, F) = Ch(T, D) for
        // D ⊆ F ⊆ Ch(T, D) under a round budget large enough for both.
        assert!(resumed.instance.subset_of(&full.instance) || resumed.rounds == budget.max_rounds);
    });
}
