//! Randomized differential tests: the compiled [`HomKernel`] against the
//! historical one-shot homomorphism path.
//!
//! The reference implementations below are the pre-kernel code paths,
//! re-stated verbatim on the raw matcher primitives: freeze the target per
//! call, plan the join per call, search. The kernel (freeze/plan caches,
//! prefilters, component decomposition, fold-based core) must agree with
//! them on every generated input — including constants, repeated
//! variables, duplicate atoms, and answer-variable anchoring.

use std::collections::HashMap;

use qr_hom::kernel::HomKernel;
use qr_hom::matcher::{exists_match, holds_ucq};
use qr_syntax::parser::{parse_instance, parse_query};
use qr_syntax::query::{ConjunctiveQuery, QAtom, Var};
use qr_syntax::{Instance, Symbol, TermId, Ucq};
use qr_testkit::{check, Rng};

/// Predicates with fixed arities, shared by queries and instances.
const PREDS: &[(&str, usize)] = &[("p", 1), ("e", 2), ("f", 2), ("t", 3)];
const CONSTS: &[&str] = &["a", "b", "c"];

/// A random conjunctive query over up to 4 variables: small pools make
/// repeated variables, duplicate atoms, and non-trivial folds common.
fn random_query(rng: &mut Rng, answer_arity: usize) -> ConjunctiveQuery {
    loop {
        let natoms = rng.range(1, 5);
        let mut atoms = Vec::new();
        for _ in 0..natoms {
            let (name, arity) = *rng.pick(PREDS);
            let args: Vec<String> = (0..arity)
                .map(|_| {
                    if rng.below(10) < 7 {
                        format!("V{}", rng.below(4))
                    } else {
                        rng.pick(CONSTS).to_string()
                    }
                })
                .collect();
            atoms.push(format!("{name}({})", args.join(",")));
        }
        // Answer variables must occur in the body.
        let mut used: Vec<String> = (0..4)
            .map(|i| format!("V{i}"))
            .filter(|v| atoms.iter().any(|a| a.contains(v.as_str())))
            .collect();
        if used.len() < answer_arity {
            continue;
        }
        // Random (possibly repeating) answer tuple over the used variables.
        let answer: Vec<String> = (0..answer_arity)
            .map(|_| used[rng.below(used.len())].clone())
            .collect();
        used.sort();
        let head = if answer.is_empty() {
            "?".to_string()
        } else {
            format!("?({})", answer.join(","))
        };
        let src = format!("{head} :- {}.", atoms.join(", "));
        return parse_query(&src).expect("generated query parses");
    }
}

fn random_instance(rng: &mut Rng) -> Instance {
    let nfacts = rng.range(1, 9);
    let mut facts = Vec::new();
    for _ in 0..nfacts {
        let (name, arity) = *rng.pick(PREDS);
        let args: Vec<&str> = (0..arity).map(|_| *rng.pick(CONSTS)).collect();
        facts.push(format!("{name}({})", args.join(",")));
    }
    parse_instance(&format!("{}.", facts.join(". "))).expect("generated instance parses")
}

fn random_answer(rng: &mut Rng, arity: usize) -> Vec<TermId> {
    (0..arity)
        .map(|_| {
            let c = rng.pick(CONSTS);
            TermId::constant(Symbol::intern(c))
        })
        .collect()
}

/// The pre-kernel `contains`: freeze `phi` per call, one-shot search.
fn contains_ref(phi: &ConjunctiveQuery, psi: &ConjunctiveQuery) -> bool {
    let (frozen, var_map): (Instance, HashMap<Var, TermId>) = phi.freeze();
    let fixed: Vec<(Var, TermId)> = psi
        .answer_vars()
        .iter()
        .zip(phi.answer_vars())
        .map(|(sv, gv)| (*sv, var_map[gv]))
        .collect();
    exists_match(psi.atoms(), psi.var_names().len(), &frozen, &fixed)
}

/// The pre-kernel `holds`: bind the answer tuple, one-shot search.
fn holds_ref(q: &ConjunctiveQuery, inst: &Instance, ans: &[TermId]) -> bool {
    let fixed: Vec<(Var, TermId)> = q
        .answer_vars()
        .iter()
        .copied()
        .zip(ans.iter().copied())
        .collect();
    exists_match(q.atoms(), q.var_names().len(), inst, &fixed)
}

/// The pre-kernel greedy `query_core`: n² full `equivalent` round-trips.
fn query_core_ref(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.canonical();
    'outer: loop {
        if current.size() <= 1 {
            return current;
        }
        for skip in 0..current.size() {
            let atoms: Vec<QAtom> = current
                .atoms()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, a)| a.clone())
                .collect();
            if !current
                .answer_vars()
                .iter()
                .all(|v| atoms.iter().any(|a| a.mentions(*v)))
            {
                continue;
            }
            let candidate = ConjunctiveQuery::new(
                current.answer_vars().to_vec(),
                atoms,
                current.var_names().to_vec(),
            );
            if contains_ref(&current, &candidate) && contains_ref(&candidate, &current) {
                current = candidate.canonical();
                continue 'outer;
            }
        }
        return current;
    }
}

#[test]
fn kernel_contains_matches_one_shot_reference() {
    let kernel = HomKernel::new();
    check("kernel_contains", 400, |rng| {
        let arity = rng.below(3);
        let phi = random_query(rng, arity);
        let psi = random_query(rng, arity);
        assert_eq!(
            kernel.contains_queries(&phi, &psi),
            contains_ref(&phi, &psi),
            "phi={} psi={}",
            phi.render(),
            psi.render()
        );
    });
    // The sweep must actually have exercised the caches and prefilters.
    let s = kernel.stats();
    assert!(s.freeze_cache_hits > 0, "repeated shapes hit the cache");
    assert!(
        s.prefilter_rejects > 0,
        "disjoint predicates get prefiltered"
    );
}

#[test]
fn kernel_equivalent_matches_one_shot_reference() {
    check("kernel_equivalent", 200, |rng| {
        let arity = rng.below(2);
        let a = random_query(rng, arity);
        let b = random_query(rng, arity);
        assert_eq!(
            qr_hom::equivalent(&a, &b),
            contains_ref(&a, &b) && contains_ref(&b, &a),
            "a={} b={}",
            a.render(),
            b.render()
        );
    });
}

#[test]
fn kernel_holds_matches_one_shot_reference() {
    let kernel = HomKernel::new();
    check("kernel_holds", 400, |rng| {
        let arity = rng.below(3);
        let q = random_query(rng, arity);
        let inst = random_instance(rng);
        let ans = random_answer(rng, arity);
        assert_eq!(
            kernel.holds(&q, &inst, &ans),
            holds_ref(&q, &inst, &ans),
            "q={} inst has {} facts",
            q.render(),
            inst.len()
        );
    });
}

#[test]
fn kernel_holds_ucq_matches_one_shot_reference() {
    check("kernel_holds_ucq", 200, |rng| {
        let arity = rng.below(2);
        let disjuncts: Vec<ConjunctiveQuery> = (0..rng.range(1, 4))
            .map(|_| random_query(rng, arity))
            .collect();
        let u = Ucq::new(disjuncts);
        let inst = random_instance(rng);
        let ans = random_answer(rng, arity);
        let expect = u.disjuncts().iter().any(|d| holds_ref(d, &inst, &ans));
        assert_eq!(holds_ucq(&u, &inst, &ans), expect);
    });
}

#[test]
fn kernel_query_core_matches_greedy_reference() {
    // The fold makes the same drop decisions in the same order as the
    // greedy loop (one banned-fact search per attempt replaces a full
    // `equivalent` round-trip), so the results are identical — not merely
    // equivalent.
    let kernel = HomKernel::new();
    check("kernel_query_core", 300, |rng| {
        let arity = rng.below(3);
        let q = random_query(rng, arity);
        let expect = query_core_ref(&q);
        let got = kernel.query_core(&q);
        assert_eq!(got, expect, "q={}", q.render());
        assert!(
            contains_ref(&q, &got) && contains_ref(&got, &q),
            "core is equivalent to the input: q={}",
            q.render()
        );
    });
}

#[test]
fn kernel_subsumption_sweeps_match_reference_at_all_thread_counts() {
    use qr_exec::Executor;
    for threads in [1, 2, 4] {
        let exec = Executor::with_threads(threads);
        check("kernel_sweeps", 100, |rng| {
            let arity = rng.below(2);
            let cand = random_query(rng, arity);
            let kept: Vec<ConjunctiveQuery> = (0..rng.range(1, 6))
                .map(|_| random_query(rng, arity))
                .collect();
            let refs: Vec<&ConjunctiveQuery> = kept.iter().collect();
            let expect_any = refs.iter().any(|r| contains_ref(&cand, r));
            let expect_cov: Vec<bool> = refs.iter().map(|r| contains_ref(r, &cand)).collect();
            assert_eq!(
                qr_hom::subsumed_by_any(&exec, &cand, &refs),
                expect_any,
                "@{threads} cand={}",
                cand.render()
            );
            assert_eq!(
                qr_hom::covered_by(&exec, &refs, &cand),
                expect_cov,
                "@{threads} cand={}",
                cand.render()
            );
        });
    }
}
