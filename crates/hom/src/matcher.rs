//! The backtracking homomorphism matcher.
//!
//! Matches a list of atoms (a query body or a rule body) against an indexed
//! instance. Candidate facts are drawn from the most selective available
//! index; atoms are ordered so that each atom shares as many variables as
//! possible with the atoms matched before it.
//!
//! Two entry styles exist:
//!
//! * [`for_each_match`] plans the atom order on every call (fine for
//!   one-shot query evaluation);
//! * [`JoinPlan`] compiles the order **once** and is re-used across many
//!   invocations — the chase compiles one plan per rule enumeration path
//!   and replays it for every delta fact, avoiding the per-trigger sorting
//!   and atom cloning the one-shot path would incur.
//!
//! The builtin `dom/1` predicate is supported: `dom(X)` matches every term
//! of the instance's active domain (this is how the paper's
//! `∀x (true ⇒ ∃z R(x,z))` rules are chased).

use std::collections::HashSet;

use qr_syntax::query::{ConjunctiveQuery, QAtom, QTerm, Var};
use qr_syntax::{Instance, TermId};

/// A partial variable assignment, indexed by [`Var`] index.
pub type Assignment = Vec<Option<TermId>>;

/// Counters filled in by the planned matcher, feeding the chase's
/// observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchCounters {
    /// Candidate facts (or domain terms) scanned while extending partial
    /// assignments — the matcher's raw work measure.
    pub candidates: u64,
}

/// A compiled join order over a fixed atom list.
///
/// The order is chosen once, statically: non-`dom` atoms greedily maximize
/// the number of positions bound by constants, the externally-bound
/// variables declared at compile time, or variables of earlier atoms;
/// `dom` atoms run last (they only filter or sweep the active domain).
/// Index selection (which positional index to probe) stays dynamic per
/// call, since it depends on the actual bindings.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    atoms: Vec<QAtom>,
    /// Indices into `atoms`, in execution order.
    order: Vec<usize>,
    nvars: usize,
}

impl JoinPlan {
    /// Compiles a plan for `atoms`, assuming the variables in `bound` are
    /// already assigned when the plan runs. `nvars` must be at least
    /// `1 + max` variable index used in `atoms` and any later `fixed` list.
    pub fn compile(atoms: Vec<QAtom>, nvars: usize, bound: &[Var]) -> JoinPlan {
        let mut bound_vars: HashSet<Var> = bound.iter().copied().collect();
        let mut remaining: Vec<usize> = (0..atoms.len())
            .filter(|&i| !atoms[i].pred.is_dom())
            .collect();
        let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
        while !remaining.is_empty() {
            let (pos_in_remaining, _) = remaining
                .iter()
                .enumerate()
                .map(|(ri, &i)| {
                    let bound_positions = atoms[i]
                        .args
                        .iter()
                        .filter(|t| match t {
                            QTerm::Const(_) => true,
                            QTerm::Var(v) => bound_vars.contains(v),
                        })
                        .count();
                    // Higher bound-position count first; tie-break on fewer
                    // free (actually-unbound) positions, then original atom
                    // order.
                    let free_positions = atoms[i].args.len() - bound_positions;
                    (ri, (usize::MAX - bound_positions, free_positions, i))
                })
                .min_by_key(|(_, key)| *key)
                .expect("remaining is non-empty");
            let atom_idx = remaining.remove(pos_in_remaining);
            bound_vars.extend(atoms[atom_idx].vars());
            order.push(atom_idx);
        }
        order.extend((0..atoms.len()).filter(|&i| atoms[i].pred.is_dom()));
        JoinPlan {
            atoms,
            order,
            nvars,
        }
    }

    /// The planned atoms, in declaration (not execution) order.
    pub fn atoms(&self) -> &[QAtom] {
        &self.atoms
    }

    /// The compiled execution order, as indices into [`atoms`](Self::atoms).
    /// The order is static per plan; candidate facts are drawn from
    /// ascending-index postings and unbound `dom` sweeps walk the domain in
    /// first-occurrence order, so matches are enumerated in lexicographic
    /// order of (fact index, domain index) along this order — the chase's
    /// incremental replay relies on this to reconstruct event order without
    /// re-running joins.
    pub fn execution_order(&self) -> &[usize] {
        &self.order
    }

    /// The variable-table size the plan was compiled for.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Enumerates all homomorphisms from the planned atoms into `inst`
    /// extending `fixed`, accumulating scan work into `counters`.
    ///
    /// The callback receives each complete assignment and returns `true`
    /// to continue enumerating. Returns `true` iff the enumeration ran to
    /// completion (was not stopped by the callback).
    pub fn for_each_match(
        &self,
        inst: &Instance,
        fixed: &[(Var, TermId)],
        counters: &mut MatchCounters,
        mut cb: impl FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_match_with_facts(inst, fixed, counters, |asg, _| cb(asg))
    }

    /// Like [`for_each_match`](Self::for_each_match), but the callback also
    /// receives the *match trail*: for every non-`dom` atom, the pair
    /// `(atom index in declaration order, index of the matched fact)`.
    /// The chase uses this to record trigger provenance without re-probing
    /// the instance's hash indexes fact-by-fact.
    pub fn for_each_match_with_facts(
        &self,
        inst: &Instance,
        fixed: &[(Var, TermId)],
        counters: &mut MatchCounters,
        mut cb: impl FnMut(&Assignment, &[(usize, usize)]) -> bool,
    ) -> bool {
        let mut asg: Assignment = vec![None; self.nvars];
        for (v, t) in fixed {
            match asg[v.index()] {
                Some(prev) if prev != *t => return true, // inconsistent fixing
                _ => asg[v.index()] = Some(*t),
            }
        }
        let mut trail: Vec<(usize, usize)> = Vec::with_capacity(self.atoms.len());
        search(
            &self.atoms,
            &self.order,
            0,
            inst,
            NO_BANNED_FACT,
            &mut asg,
            &mut trail,
            counters,
            &mut cb,
        )
    }
}

/// Enumerates all homomorphisms from `atoms` into `inst` extending `fixed`,
/// planning the join order per call.
///
/// `nvars` must be at least `1 + max` variable index used in `atoms` and
/// `fixed`. The callback receives each complete assignment and returns
/// `true` to continue enumerating; returning `false` stops the search.
///
/// Returns `true` iff the enumeration ran to completion (was not stopped by
/// the callback).
pub fn for_each_match(
    atoms: &[QAtom],
    nvars: usize,
    inst: &Instance,
    fixed: &[(Var, TermId)],
    mut cb: impl FnMut(&Assignment) -> bool,
) -> bool {
    let mut asg: Assignment = vec![None; nvars];
    for (v, t) in fixed {
        match asg[v.index()] {
            Some(prev) if prev != *t => return true, // inconsistent fixing: no matches
            _ => asg[v.index()] = Some(*t),
        }
    }
    let order = plan(atoms, &asg, inst);
    let mut counters = MatchCounters::default();
    let mut trail: Vec<(usize, usize)> = Vec::with_capacity(atoms.len());
    search(
        atoms,
        &order,
        0,
        inst,
        NO_BANNED_FACT,
        &mut asg,
        &mut trail,
        &mut counters,
        &mut |asg, _| cb(asg),
    )
}

/// Sentinel for [`search`]'s `banned` parameter: no fact is excluded.
const NO_BANNED_FACT: usize = usize::MAX;

/// `true` iff some homomorphism from `atoms` into `inst` extends `fixed`
/// **without ever matching the fact at index `banned_fact`**. Scan work is
/// accumulated into `counters`.
///
/// This is the core-finding fold's primitive: with `ψ` frozen into `inst`
/// so that atom `i` became fact `i`, a match avoiding fact `k` is exactly a
/// retraction of `ψ` onto `ψ ∖ {atom k}` (the identity embeds the smaller
/// query back, so no reverse check is needed). `atoms` must not mention the
/// builtin `dom` predicate — `dom` sweeps the instance's full domain, which
/// a banned fact cannot be removed from.
pub fn exists_match_excluding(
    atoms: &[QAtom],
    nvars: usize,
    inst: &Instance,
    fixed: &[(Var, TermId)],
    banned_fact: usize,
    counters: &mut MatchCounters,
) -> bool {
    debug_assert!(
        atoms.iter().all(|a| !a.pred.is_dom()),
        "exists_match_excluding does not support dom atoms"
    );
    let mut asg: Assignment = vec![None; nvars];
    for (v, t) in fixed {
        match asg[v.index()] {
            Some(prev) if prev != *t => return false, // inconsistent fixing
            _ => asg[v.index()] = Some(*t),
        }
    }
    let order = plan(atoms, &asg, inst);
    let mut trail: Vec<(usize, usize)> = Vec::with_capacity(atoms.len());
    !search(
        atoms,
        &order,
        0,
        inst,
        banned_fact,
        &mut asg,
        &mut trail,
        counters,
        &mut |_, _| false,
    )
}

/// Dynamic atom ordering: `dom` atoms last; otherwise greedily maximize the
/// number of already-bound positions, tie-breaking on fewer index
/// candidates in the instance at hand.
fn plan(atoms: &[QAtom], asg: &Assignment, inst: &Instance) -> Vec<usize> {
    let mut bound: HashSet<Var> = asg
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|_| Var(i as u32)))
        .collect();
    let mut remaining: Vec<usize> = (0..atoms.len())
        .filter(|&i| !atoms[i].pred.is_dom())
        .collect();
    let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
    while !remaining.is_empty() {
        let (pos_in_remaining, _) = remaining
            .iter()
            .enumerate()
            .map(|(ri, &i)| {
                let bound_positions = atoms[i]
                    .args
                    .iter()
                    .filter(|t| match t {
                        QTerm::Const(_) => true,
                        QTerm::Var(v) => bound.contains(v),
                    })
                    .count();
                let candidates = inst.with_pred(atoms[i].pred).len();
                // Higher bound-position count first, then fewer candidates.
                (ri, (usize::MAX - bound_positions, candidates))
            })
            .min_by_key(|(_, key)| *key)
            .expect("remaining is non-empty");
        let atom_idx = remaining.remove(pos_in_remaining);
        bound.extend(atoms[atom_idx].vars());
        order.push(atom_idx);
    }
    order.extend((0..atoms.len()).filter(|&i| atoms[i].pred.is_dom()));
    order
}

#[allow(clippy::too_many_arguments)]
fn search(
    atoms: &[QAtom],
    order: &[usize],
    depth: usize,
    inst: &Instance,
    banned: usize,
    asg: &mut Assignment,
    trail: &mut Vec<(usize, usize)>,
    counters: &mut MatchCounters,
    cb: &mut impl FnMut(&Assignment, &[(usize, usize)]) -> bool,
) -> bool {
    let Some(&atom_idx) = order.get(depth) else {
        return cb(asg, trail);
    };
    let atom = &atoms[atom_idx];
    if atom.pred.is_dom() {
        let v = match atom.args[0] {
            QTerm::Var(v) => v,
            QTerm::Const(c) => {
                // A ground dom atom: holds iff the constant is in the domain.
                let t = TermId::constant(c);
                if inst.contains_term(t) {
                    return search(
                        atoms,
                        order,
                        depth + 1,
                        inst,
                        banned,
                        asg,
                        trail,
                        counters,
                        cb,
                    );
                }
                return true;
            }
        };
        if let Some(t) = asg[v.index()] {
            if inst.contains_term(t) {
                return search(
                    atoms,
                    order,
                    depth + 1,
                    inst,
                    banned,
                    asg,
                    trail,
                    counters,
                    cb,
                );
            }
            return true;
        }
        for &t in inst.domain() {
            counters.candidates += 1;
            asg[v.index()] = Some(t);
            if !search(
                atoms,
                order,
                depth + 1,
                inst,
                banned,
                asg,
                trail,
                counters,
                cb,
            ) {
                asg[v.index()] = None;
                return false;
            }
        }
        asg[v.index()] = None;
        return true;
    }

    // Pick the most selective index over bound positions.
    let mut candidates: Option<&[u32]> = None;
    for (pos, t) in atom.args.iter().enumerate() {
        let bound_term = match t {
            QTerm::Const(c) => Some(TermId::constant(*c)),
            QTerm::Var(v) => asg[v.index()],
        };
        if let Some(term) = bound_term {
            let list = inst.with_pred_pos_term(atom.pred, pos as u32, term);
            if candidates.is_none_or(|c| list.len() < c.len()) {
                candidates = Some(list);
            }
        }
    }
    let candidates = candidates.unwrap_or_else(|| inst.with_pred(atom.pred));

    for &fidx in candidates {
        let fidx = fidx as usize;
        if fidx == banned {
            continue;
        }
        counters.candidates += 1;
        let fact = inst.fact(fidx);
        let mut newly_bound: Vec<Var> = Vec::new();
        let mut ok = true;
        for (pos, t) in atom.args.iter().enumerate() {
            let ft = fact.args[pos];
            match t {
                QTerm::Const(c) => {
                    if TermId::constant(*c) != ft {
                        ok = false;
                        break;
                    }
                }
                QTerm::Var(v) => match asg[v.index()] {
                    Some(b) if b != ft => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        asg[v.index()] = Some(ft);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if ok {
            trail.push((atom_idx, fidx));
            let keep_going = search(
                atoms,
                order,
                depth + 1,
                inst,
                banned,
                asg,
                trail,
                counters,
                cb,
            );
            trail.pop();
            if !keep_going {
                for v in newly_bound {
                    asg[v.index()] = None;
                }
                return false;
            }
        }
        for v in newly_bound {
            asg[v.index()] = None;
        }
    }
    true
}

/// Finds one homomorphism from `atoms` into `inst` extending `fixed`.
pub fn find_hom(
    atoms: &[QAtom],
    nvars: usize,
    inst: &Instance,
    fixed: &[(Var, TermId)],
) -> Option<Assignment> {
    let mut found = None;
    for_each_match(atoms, nvars, inst, fixed, |asg| {
        found = Some(asg.clone());
        false
    });
    found
}

/// `true` iff some homomorphism from `atoms` into `inst` extends `fixed`.
pub fn exists_match(
    atoms: &[QAtom],
    nvars: usize,
    inst: &Instance,
    fixed: &[(Var, TermId)],
) -> bool {
    find_hom(atoms, nvars, inst, fixed).is_some()
}

/// All homomorphisms (up to `limit`; `0` means no limit).
pub fn all_homs(
    atoms: &[QAtom],
    nvars: usize,
    inst: &Instance,
    fixed: &[(Var, TermId)],
    limit: usize,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    for_each_match(atoms, nvars, inst, fixed, |asg| {
        out.push(asg.clone());
        limit == 0 || out.len() < limit
    });
    out
}

fn nvars_of(q: &ConjunctiveQuery) -> usize {
    q.var_names().len()
}

/// All answer tuples of `q` over `inst` (deduplicated; up to `limit`
/// distinct tuples, `0` meaning no limit). For a Boolean query the result
/// is either empty or the singleton empty tuple.
pub fn all_answers(q: &ConjunctiveQuery, inst: &Instance, limit: usize) -> Vec<Vec<TermId>> {
    let mut seen: HashSet<Vec<TermId>> = HashSet::new();
    let mut out = Vec::new();
    // The scratch tuple is reused across matches: a duplicate hit costs a
    // hash lookup and nothing else — no per-match allocation.
    let mut scratch: Vec<TermId> = Vec::with_capacity(q.answer_vars().len());
    for_each_match(q.atoms(), nvars_of(q), inst, &[], |asg| {
        scratch.clear();
        scratch.extend(
            q.answer_vars()
                .iter()
                .map(|v| asg[v.index()].expect("answer variable bound by a complete match")),
        );
        if !seen.contains(&scratch) {
            seen.insert(scratch.clone());
            out.push(scratch.clone());
        }
        limit == 0 || out.len() < limit
    });
    out
}

/// `true` iff some disjunct of the UCQ holds: `inst ⊨ ⋁ qᵢ(ans)`.
pub fn holds_ucq(u: &qr_syntax::Ucq, inst: &Instance, ans: &[TermId]) -> bool {
    u.disjuncts().iter().any(|d| holds(d, inst, ans))
}

/// [`holds_ucq`] with the disjunct sweep scheduled on `exec`'s worker
/// pool. Each `inst ⊨ qᵢ(ans)` check is an independent pure predicate, so
/// the early-exiting parallel `any` gives exactly the sequential answer.
/// The bench harness uses this for entailment sweeps over large
/// rewritings.
pub fn holds_ucq_with(
    exec: &qr_exec::Executor,
    u: &qr_syntax::Ucq,
    inst: &Instance,
    ans: &[TermId],
) -> bool {
    exec.any(u.disjuncts(), |d| holds(d, inst, ans))
}

/// `true` iff `inst ⊨ q(ans)`.
///
/// Delegates to the process-wide [`crate::kernel::HomKernel`]: the query's
/// compiled component plans are cached across calls, and cheap prefilters
/// (predicate presence, anchored-position postings) refute hopeless checks
/// before any backtracking.
pub fn holds(q: &ConjunctiveQuery, inst: &Instance, ans: &[TermId]) -> bool {
    crate::kernel::global_kernel().holds(q, inst, ans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parser::{parse_instance, parse_query};
    use qr_syntax::Symbol;

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn evaluates_path_query() {
        let inst = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let q = parse_query("?(X,Z) :- e(X,Y), e(Y,Z).").unwrap();
        let mut ans = all_answers(&q, &inst, 0);
        ans.sort();
        assert_eq!(ans, vec![vec![c("a"), c("c")], vec![c("b"), c("d")]]);
    }

    #[test]
    fn holds_with_fixed_answers() {
        let inst = parse_instance("e(a,b). e(b,c).").unwrap();
        let q = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        assert!(holds(&q, &inst, &[c("a")]));
        assert!(!holds(&q, &inst, &[c("b")]));
    }

    #[test]
    fn boolean_queries() {
        let inst = parse_instance("e(a,b). e(b,a).").unwrap();
        let cycle = parse_query("? :- e(X,Y), e(Y,X).").unwrap();
        assert!(holds(&cycle, &inst, &[]));
        let triangle = parse_query("? :- e(X,Y), e(Y,Z), e(Z,X), e(X,X).").unwrap();
        assert!(!holds(&triangle, &inst, &[]));
    }

    #[test]
    fn repeated_variables_enforced() {
        let inst = parse_instance("e(a,b).").unwrap();
        let q = parse_query("? :- e(X,X).").unwrap();
        assert!(!holds(&q, &inst, &[]));
        let inst2 = parse_instance("e(a,a).").unwrap();
        assert!(holds(&q, &inst2, &[]));
    }

    #[test]
    fn constants_in_query() {
        let inst = parse_instance("e(a,b). e(c,b).").unwrap();
        let q = parse_query("?(X) :- e(a, Y), e(X, Y).").unwrap();
        let mut ans = all_answers(&q, &inst, 0);
        ans.sort();
        assert_eq!(ans, vec![vec![c("a")], vec![c("c")]]);
    }

    #[test]
    fn limits_respected() {
        let inst = parse_instance("e(a,b). e(b,c). e(c,d). e(d,a).").unwrap();
        let q = parse_query("?(X) :- e(X,Y).").unwrap();
        assert_eq!(all_answers(&q, &inst, 2).len(), 2);
        assert_eq!(all_answers(&q, &inst, 0).len(), 4);
    }

    #[test]
    fn empty_atom_list_matches_once() {
        let inst = parse_instance("e(a,b).").unwrap();
        let mut count = 0;
        for_each_match(&[], 0, &inst, &[], |_| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn dom_atom_ranges_over_domain() {
        use qr_syntax::query::VarPool;
        use qr_syntax::{Pred, QAtom};
        let inst = parse_instance("e(a,b). e(b,c).").unwrap();
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let atoms = vec![QAtom::new(Pred::dom(), vec![QTerm::Var(x)])];
        let homs = all_homs(&atoms, 1, &inst, &[], 0);
        assert_eq!(homs.len(), 3); // a, b, c
    }

    #[test]
    fn inconsistent_fixed_yields_nothing() {
        let inst = parse_instance("e(a,b).").unwrap();
        let q = parse_query("?(X) :- e(X,Y).").unwrap();
        let v = q.answer_vars()[0];
        let homs = all_homs(q.atoms(), 2, &inst, &[(v, c("a")), (v, c("b"))], 0);
        assert!(homs.is_empty());
    }

    #[test]
    fn compiled_plan_matches_dynamic_planner() {
        let inst = parse_instance("e(a,b). e(b,c). e(c,d). p(b). p(c).").unwrap();
        let q = parse_query("?(X,Z) :- e(X,Y), p(Y), e(Y,Z).").unwrap();
        let plan = JoinPlan::compile(q.atoms().to_vec(), q.var_names().len(), &[]);
        let mut planned: Vec<Assignment> = Vec::new();
        let mut counters = MatchCounters::default();
        plan.for_each_match(&inst, &[], &mut counters, |asg| {
            planned.push(asg.clone());
            true
        });
        let mut dynamic: Vec<Assignment> = Vec::new();
        for_each_match(q.atoms(), q.var_names().len(), &inst, &[], |asg| {
            dynamic.push(asg.clone());
            true
        });
        planned.sort();
        dynamic.sort();
        assert_eq!(planned, dynamic);
        assert!(counters.candidates > 0, "scan work is counted");
    }

    #[test]
    fn compiled_plan_respects_fixed_bindings() {
        let inst = parse_instance("e(a,b). e(b,c).").unwrap();
        let q = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        let x = q.answer_vars()[0];
        let plan = JoinPlan::compile(q.atoms().to_vec(), q.var_names().len(), &[x]);
        let mut n = 0;
        plan.for_each_match(&inst, &[(x, c("a"))], &mut MatchCounters::default(), |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
        // Inconsistent fixing enumerates nothing but completes.
        let completed = plan.for_each_match(
            &inst,
            &[(x, c("a")), (x, c("b"))],
            &mut MatchCounters::default(),
            |_| panic!("no match expected"),
        );
        assert!(completed);
    }

    #[test]
    fn compiled_plan_orders_bound_atoms_first() {
        // With X pre-bound, the atom e(X,Y) should run before e(Y,Z) even
        // though both have the same predicate.
        let q = parse_query("? :- e(Y,Z), e(X,Y).").unwrap();
        let x = q
            .var_names()
            .iter()
            .position(|n| n.as_str() == "X")
            .map(|i| Var(i as u32))
            .unwrap();
        let plan = JoinPlan::compile(q.atoms().to_vec(), q.var_names().len(), &[x]);
        assert_eq!(plan.order[0], 1, "the X-anchored atom runs first");
    }

    #[test]
    fn compile_tie_break_prefers_fewer_free_positions() {
        // Both atoms bind exactly one position (X); the tie must break on
        // the number of actually-unbound positions, so the binary atom
        // (one free position) runs before the ternary one (two free
        // positions), regardless of declaration order.
        let q = parse_query("? :- t(X,Y,Z), b(X,W).").unwrap();
        let x = q
            .var_names()
            .iter()
            .position(|n| n.as_str() == "X")
            .map(|i| Var(i as u32))
            .unwrap();
        let plan = JoinPlan::compile(q.atoms().to_vec(), q.var_names().len(), &[x]);
        assert_eq!(plan.order, vec![1, 0], "fewer free positions first");
        // Declared the other way around, the order is the same pair of
        // atoms (declaration order is only the final tie-break).
        let q = parse_query("? :- b(X,W), t(X,Y,Z).").unwrap();
        let x = q
            .var_names()
            .iter()
            .position(|n| n.as_str() == "X")
            .map(|i| Var(i as u32))
            .unwrap();
        let plan = JoinPlan::compile(q.atoms().to_vec(), q.var_names().len(), &[x]);
        assert_eq!(plan.order, vec![0, 1], "fewer free positions first");
    }

    #[test]
    fn all_answers_deduplicates_and_respects_limit() {
        // The 1-step reachability pairs out of `a` appear through two
        // distinct matches each (via b and via c); duplicates must be
        // dropped and the limit counts distinct tuples.
        let inst = parse_instance("e(a,b). e(a,c). e(b,d). e(c,d).").unwrap();
        let q = parse_query("?(X,Z) :- e(X,Y), e(Y,Z).").unwrap();
        let ans = all_answers(&q, &inst, 0);
        assert_eq!(ans, vec![vec![c("a"), c("d")]]);
        let ans = all_answers(&q, &inst, 1);
        assert_eq!(ans.len(), 1);
    }
}
