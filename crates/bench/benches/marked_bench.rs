//! Criterion micro-benchmarks for the marked-query process (E3/E9's
//! workload): `rew(φ_R^n)` under `T_d`, the `T_d^K` levels, and rank
//! computation (the termination certificate of Lemma 53).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qr_core::marked::{rewrite_td, rewrite_tdk, ColorMap, MarkedQuery};
use qr_core::ranks::qrk;
use qr_core::theories::{phi_n, phi_r_n};

fn bench_marked_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("marked/rewrite_td");
    for n in [1usize, 2, 3, 4] {
        let q = phi_r_n(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| rewrite_td(q, 10_000_000).unwrap().disjuncts.len())
        });
    }
    group.finish();
}

fn bench_tdk_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("marked/rewrite_tdk");
    for (hi, lo) in [("i2", "i1"), ("i3", "i2")] {
        let q = phi_n(2, hi, lo);
        group.bench_with_input(BenchmarkId::new("level", hi), &q, |b, q| {
            b.iter(|| rewrite_tdk(3, q, 10_000_000).unwrap().disjuncts.len())
        });
    }
    group.finish();
}

fn bench_rank_computation(c: &mut Criterion) {
    let colors = ColorMap::td();
    let mut group = c.benchmark_group("marked/qrk");
    for n in [1usize, 2, 3] {
        let seeds = MarkedQuery::markings_of(&phi_r_n(n), &colors).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &seeds, |b, seeds| {
            b.iter(|| {
                seeds
                    .iter()
                    .map(|s| qrk(s, 2).components().len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marked_process, bench_tdk_levels, bench_rank_computation);
criterion_main!(benches);
