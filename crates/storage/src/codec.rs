//! Minimal std-only byte codec for versioned checkpoint formats.
//!
//! Unsigned integers are LEB128 varints; strings are length-prefixed
//! UTF-8. `qr-syntax` builds the instance checkpoint format on top of
//! this (magic + version header, predicate/term tables, fact stream).

use std::fmt;

/// Error decoding a checkpoint byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before a complete value was read.
    UnexpectedEof,
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream's format version is newer than this build understands.
    UnsupportedVersion(u64),
    /// A structurally invalid value (out-of-range id, bad UTF-8, ...).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of checkpoint stream"),
            DecodeError::BadMagic => write!(f, "bad checkpoint magic"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            DecodeError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends an unsigned integer as a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded byte stream.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the full slice.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// `true` iff every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(DecodeError::Malformed("varint overflows u64"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.varint()? as usize;
        let bytes = self.raw(len)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::Malformed("invalid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.varint(v);
        }
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint(), Ok(v));
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn strings_and_raw_roundtrip() {
        let mut w = ByteWriter::new();
        w.raw(b"QRCK");
        w.str("mother");
        w.str("");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.raw(4), Ok(&b"QRCK"[..]));
        assert_eq!(r.str(), Ok("mother"));
        assert_eq!(r.str(), Ok(""));
        assert!(r.is_at_end());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = ByteWriter::new();
        w.str("hello");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes[..3]);
        assert_eq!(r.str(), Err(DecodeError::UnexpectedEof));
        assert_eq!(
            ByteReader::new(&[0x80]).varint(),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn overlong_varint_is_malformed() {
        // 11 continuation bytes cannot fit in a u64.
        let bytes = [
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ];
        assert_eq!(
            ByteReader::new(&bytes).varint(),
            Err(DecodeError::Malformed("varint overflows u64"))
        );
    }
}
