//! The normalization algorithm of Appendix A (the engine behind the proof
//! of Theorem 3: *binary BDD theories are local*).
//!
//! A BDD theory `T` is transformed into `T_NF = T_II ∪ T_III`:
//!
//! * **Step one** (`T_I`): every existential rule's body is replaced by all
//!   elements of its UCQ rewriting under `T` ("body rewriting",
//!   Definition 67) — so bodies only need to match *existential* atoms.
//! * **Step two** (`T_II`): each body is split into its frontier-connected
//!   part `β` and the disconnected remainder `φ`, and `φ` is encapsulated
//!   in a fresh **nullary** predicate `M_φ` ("body separation",
//!   Definition 68).
//! * **Step three** (`T_III`): rules `ζ ⇒ M_φ` for every `ζ ∈ rew_T(φ)`.
//!
//! The point (Example 66): ancestor sets of the raw theory can be blown up
//! by irrelevant disconnected side conditions; after normalization the
//! *connected* ancestors of every atom are bounded (the Crucial Lemma 77),
//! which yields the locality of binary BDD theories. [`lemma70_check`] and
//! [`corollary76_check`] validate the construction against the chase on
//! concrete instances, and `qr-bench`'s E13 measures the ancestor bounds.

use std::collections::HashMap;

use qr_chase::engine::{chase, chase_all, ChaseBudget};
use qr_chase::provenance::Provenance;
use qr_rewrite::{rewrite, RewriteBudget, RewriteError};
use qr_syntax::gaifman;
use qr_syntax::query::{QAtom, QTerm, Var};
use qr_syntax::{ConjunctiveQuery, Instance, Pred, Symbol, Tgd, Theory};

/// The result of normalizing a theory.
#[derive(Clone, Debug)]
pub struct Normalized {
    /// `T_NF = T_II ∪ T_III` as one theory (`T_II` first).
    pub theory: Theory,
    /// Number of `T_II` rules (prefix of `theory`).
    pub n_t_ii: usize,
    /// The nullary predicates with the Boolean CQs they encapsulate.
    pub m_preds: Vec<(Pred, ConjunctiveQuery)>,
}

/// Normalization failures.
#[derive(Clone, Debug)]
pub enum NormalizeError {
    /// A body rewriting did not complete within budget — either the theory
    /// is not BDD, or the budget is too small.
    RewritingBudget {
        /// The rule whose body rewriting overflowed.
        rule: String,
    },
    /// The theory is outside the fragment (builtin bodies).
    Unsupported(String),
}

impl std::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalizeError::RewritingBudget { rule } => {
                write!(f, "body rewriting exhausted its budget for rule: {rule}")
            }
            NormalizeError::Unsupported(m) => write!(f, "unsupported theory: {m}"),
        }
    }
}

impl std::error::Error for NormalizeError {}

impl From<RewriteError> for NormalizeError {
    fn from(e: RewriteError) -> Self {
        NormalizeError::Unsupported(e.to_string())
    }
}

/// Runs the three-step normalization algorithm of Appendix A.
pub fn normalize(theory: &Theory, budget: RewriteBudget) -> Result<Normalized, NormalizeError> {
    if theory.has_builtin_bodies() {
        return Err(NormalizeError::Unsupported(
            "builtin (true/dom) bodies are outside Appendix A's fragment".into(),
        ));
    }

    let mut t_ii: Vec<Tgd> = Vec::new();
    let mut m_preds: Vec<(Pred, ConjunctiveQuery)> = Vec::new();
    let mut m_by_key: HashMap<ConjunctiveQuery, Pred> = HashMap::new();

    for rule in theory.rules().iter().filter(|r| !r.is_datalog()) {
        // Step one: body rewriting with the frontier as answer tuple.
        let frontier = rule.frontier();
        let body_q = ConjunctiveQuery::new(
            frontier.clone(),
            rule.body().to_vec(),
            rule.var_names().to_vec(),
        );
        let rw = rewrite(theory, &body_q, budget)?;
        if !rw.is_complete() {
            return Err(NormalizeError::RewritingBudget {
                rule: rule.render(),
            });
        }
        for beta in rw.ucq.disjuncts() {
            // Step two: body separation around the frontier component(s).
            let (connected, phi) = separate(beta);
            let m_atom = match phi {
                None => None,
                Some(phi_q) => {
                    let key = phi_q.canonical();
                    let pred = *m_by_key.entry(key.clone()).or_insert_with(|| {
                        let name = Symbol::fresh(&format!("m_nf{}", m_preds.len() + 1));
                        let p = Pred::new(name, 0);
                        m_preds.push((p, key));
                        p
                    });
                    Some(QAtom::new(pred, Vec::new()))
                }
            };
            t_ii.push(assemble_rule(rule, beta, connected, m_atom, t_ii.len()));
        }
    }

    // Step three: rules producing the nullary predicates.
    let mut t_iii: Vec<Tgd> = Vec::new();
    for (pred, phi) in m_preds.iter() {
        let rw = rewrite(theory, phi, budget)?;
        if !rw.is_complete() {
            return Err(NormalizeError::RewritingBudget {
                rule: format!("{} <- {}", pred.name(), phi.render()),
            });
        }
        for zeta in rw.ucq.disjuncts() {
            let head = QAtom::new(*pred, Vec::new());
            t_iii.push(Tgd::new(
                format!("nf_m{}", t_iii.len() + 1),
                zeta.atoms().to_vec(),
                vec![head],
                zeta.var_names().to_vec(),
            ));
        }
    }

    let n_t_ii = t_ii.len();
    t_ii.extend(t_iii);
    Ok(Normalized {
        theory: Theory::new(format!("{}_nf", theory.name()), t_ii),
        n_t_ii,
        m_preds,
    })
}

/// Splits a rewritten body into the atoms whose Gaifman component touches
/// an answer (frontier) variable, and the Boolean remainder `φ` (if any).
fn separate(beta: &ConjunctiveQuery) -> (Vec<usize>, Option<ConjunctiveQuery>) {
    let graph = gaifman::of_query(beta);
    let components = graph.components();
    let frontier: Vec<Var> = beta.answer_vars().to_vec();
    let in_frontier_comp = |v: Var| {
        components
            .iter()
            .any(|c| c.contains(&v) && frontier.iter().any(|f| c.contains(f)))
    };
    let mut connected = Vec::new();
    let mut phi_atoms = Vec::new();
    for (i, a) in beta.atoms().iter().enumerate() {
        // An atom's variables form a Gaifman clique, so the first variable
        // determines the component; ground/nullary atoms and frontier-free
        // components go to φ, and for detached rules (empty frontier) the
        // whole body is φ.
        let touches = a.vars().next().is_some_and(in_frontier_comp);
        if !frontier.is_empty() && touches {
            connected.push(i);
        } else {
            phi_atoms.push(a.clone());
        }
    }
    if phi_atoms.is_empty() {
        (connected, None)
    } else {
        let phi = ConjunctiveQuery::new(Vec::new(), phi_atoms, beta.var_names().to_vec());
        (connected, Some(phi.canonical()))
    }
}

/// Builds the `T_II` rule `β ∧ M_φ ⇒ head(ρ)` in a fresh variable space.
fn assemble_rule(
    original: &Tgd,
    beta: &ConjunctiveQuery,
    connected: Vec<usize>,
    m_atom: Option<QAtom>,
    index: usize,
) -> Tgd {
    // Variable space: β's variables first, then the original head's
    // non-frontier variables appended; frontier variables of the head are
    // redirected to β's answer variables.
    let mut names: Vec<Symbol> = beta.var_names().to_vec();
    let frontier = original.frontier();
    let mut head_map: HashMap<Var, Var> = HashMap::new();
    for (i, f) in frontier.iter().enumerate() {
        head_map.insert(*f, beta.answer_vars()[i]);
    }
    for v in original.head_vars() {
        head_map.entry(v).or_insert_with(|| {
            let nv = Var(names.len() as u32);
            names.push(Symbol::fresh(original.var_name(v).as_str()));
            nv
        });
    }
    let head: Vec<QAtom> = original
        .head()
        .iter()
        .map(|a| {
            QAtom::new(
                a.pred,
                a.args
                    .iter()
                    .map(|t| match t {
                        QTerm::Var(v) => QTerm::Var(head_map[v]),
                        QTerm::Const(c) => QTerm::Const(*c),
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let mut body: Vec<QAtom> = connected
        .into_iter()
        .map(|i| beta.atoms()[i].clone())
        .collect();
    if let Some(m) = m_atom {
        body.push(m);
    }
    Tgd::new(format!("nf{}", index + 1), body, head, names)
}

/// Empirical check of Lemma 70 on one instance: the existential parts of
/// `Ch(T,D)` and `Ch(T_NF,D)` coincide, up to the ±2-round shift of
/// Lemmas 72/75. Returns `true` when both inclusions hold on the compared
/// prefixes.
pub fn lemma70_check(
    theory: &Theory,
    normalized: &Normalized,
    db: &Instance,
    depth: usize,
) -> bool {
    let budget = ChaseBudget {
        max_rounds: depth + 2,
        max_facts: 500_000,
    };
    let ch = chase(theory, db, budget);
    let ch_nf = chase(&normalized.theory, db, budget);

    let exist_part = |c: &qr_chase::Chase, t: &Theory, upto: usize| -> Instance {
        Instance::from_facts(c.instance.iter().enumerate().filter_map(|(i, f)| {
            if c.round_of[i] > upto {
                return None;
            }
            match &c.derivations[i] {
                None => Some(f.to_fact()),
                Some(d) => {
                    let rule = &t.rules()[d.rule];
                    (!rule.is_datalog() && f.pred.arity() > 0).then(|| f.to_fact())
                }
            }
        }))
    };

    let e_t = exist_part(&ch, theory, depth);
    let e_nf_deep = exist_part(&ch_nf, &normalized.theory, depth + 2);
    let e_nf = exist_part(&ch_nf, &normalized.theory, depth);
    let e_t_deep = exist_part(&ch, theory, depth + 2);
    e_t.subset_of(&e_nf_deep) && e_nf.subset_of(&e_t_deep)
}

/// Empirical check of Corollary 76: closing the existential part of
/// `Ch(T_NF, D)` under the Datalog rules of `T` recovers `Ch(T,D)` (on the
/// compared prefixes).
pub fn corollary76_check(
    theory: &Theory,
    normalized: &Normalized,
    db: &Instance,
    depth: usize,
) -> bool {
    let budget = ChaseBudget {
        max_rounds: depth + 2,
        max_facts: 500_000,
    };
    let ch_nf = chase(&normalized.theory, db, budget);
    let base = Instance::from_facts(
        ch_nf
            .instance
            .iter()
            .filter(|f| f.pred.arity() > 0)
            .map(|f| f.to_fact()),
    );
    let datalog = Theory::new(
        "t_dl",
        theory
            .rules()
            .iter()
            .filter(|r| r.is_datalog())
            .cloned()
            .collect(),
    );
    let closed = chase(&datalog, &base, ChaseBudget::rounds(depth + 4));
    let ch = chase(
        theory,
        db,
        ChaseBudget {
            max_rounds: depth,
            max_facts: 500_000,
        },
    );
    ch.instance.subset_of(&closed.instance)
}

/// The union of (adversarial) ancestor sets over all atoms produced by
/// **existential** rules — the paper's `∪_{α ∈ S(t)} anc(α)` aggregated
/// over all trees (Lemmas 65/77). `connected_only` switches to the
/// connected-ancestor notion `canc` of Appendix A.
pub fn existential_ancestor_union(
    theory: &Theory,
    db: &Instance,
    depth: usize,
    connected_only: bool,
) -> usize {
    let budget = ChaseBudget {
        max_rounds: depth,
        max_facts: 200_000,
    };
    let ch = chase_all(theory, db, budget);
    let prov = Provenance::new(&ch);
    let mut union = std::collections::HashSet::new();
    for i in 0..ch.instance.len() {
        let Some(d) = &ch.derivations[i] else {
            continue;
        };
        if theory.rules()[d.rule].is_datalog() {
            continue;
        }
        union.extend(prov.adversarial_ancestors(i, connected_only));
    }
    union.len()
}

/// Measures, on one instance, the worst-case tree-ancestor bound of the
/// raw theory (the quantity the *false* Lemma 65 would bound) against the
/// *connected* tree-ancestor bound of the normalized theory (the quantity
/// the Crucial Lemma 77 does bound).
pub fn ancestor_bounds(
    theory: &Theory,
    normalized: &Normalized,
    db: &Instance,
    depth: usize,
) -> (usize, usize) {
    (
        existential_ancestor_union(theory, db, depth, false),
        existential_ancestor_union(&normalized.theory, db, depth, true),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theories::{ex66, t_a};
    use qr_syntax::parse_instance;

    fn ex66_instance(m: usize) -> Instance {
        let mut src = String::from("e(a0, a1).\n");
        for i in 1..=m {
            src.push_str(&format!("p(b{i}).\n"));
        }
        parse_instance(&src).unwrap()
    }

    #[test]
    fn normalizes_example_66() {
        let n = normalize(&ex66(), RewriteBudget::default()).unwrap();
        // One nullary predicate (for ∃z P(z)).
        assert_eq!(n.m_preds.len(), 1);
        // T_II: the connected body {E,R} and the separated {E} ∧ M_P.
        assert_eq!(n.n_t_ii, 2);
        // T_III: P(z) ⇒ M_P (plus any rewriting variants).
        assert!(n.theory.len() >= 3);
        // Every T_NF rule is existential or produces a nullary atom
        // (Observation 69's shape).
        for r in n.theory.rules() {
            assert!(!r.is_datalog() || r.head()[0].pred.arity() == 0);
        }
    }

    #[test]
    fn lemma_70_holds_on_example_66() {
        let t = ex66();
        let n = normalize(&t, RewriteBudget::default()).unwrap();
        for m in [1usize, 3] {
            assert!(lemma70_check(&t, &n, &ex66_instance(m), 4), "m={m}");
        }
    }

    #[test]
    fn corollary_76_holds_on_example_66() {
        let t = ex66();
        let n = normalize(&t, RewriteBudget::default()).unwrap();
        assert!(corollary76_check(&t, &n, &ex66_instance(2), 3));
    }

    #[test]
    fn ancestor_blowup_repaired() {
        // Example 66: an adversarial ancestor function charges the E-chain
        // a fresh P-atom per level, so the raw tree-ancestor union grows
        // with the instance (given enough depth); after normalization the
        // connected ancestors of the whole tree stay constant — exactly
        // why Lemma 65 is false and Lemma 77 holds.
        let t = ex66();
        let n = normalize(&t, RewriteBudget::default()).unwrap();
        let (raw2, nf2) = ancestor_bounds(&t, &n, &ex66_instance(2), 2 * 2 + 2);
        let (raw4, nf4) = ancestor_bounds(&t, &n, &ex66_instance(4), 2 * 4 + 2);
        assert!(raw4 > raw2, "raw bound should grow: {raw2} vs {raw4}");
        assert_eq!(nf2, nf4, "normalized bound must be flat");
        assert!(nf4 <= 2);
    }

    #[test]
    fn connected_theory_normalizes_trivially() {
        // T_a has connected bodies: no nullary predicates appear.
        let n = normalize(&t_a(), RewriteBudget::default()).unwrap();
        assert!(n.m_preds.is_empty());
        for r in n.theory.rules() {
            assert!(r.body().iter().all(|a| a.pred.arity() > 0));
        }
    }
}
