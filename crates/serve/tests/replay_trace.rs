//! The deterministic trace-replay pin: the smoke replay's request/response
//! stream renders to byte-identical traces at 1/2/4 worker threads, and
//! those bytes are committed as `tests/replays/smoke.trace`.
//!
//! Regenerate the golden file after an intentional behavior change with
//! `QR_BLESS=1 cargo test -p qr-serve --test replay_trace`.

use std::path::PathBuf;

use qr_rewrite::RewriteBudget;
use qr_serve::{render_trace, Engine, EngineConfig, Response, ResponseStatus, Tier};

const REQUESTS: &str = include_str!("replays/smoke.requests");

fn smoke_engine(threads: usize) -> Engine {
    let mut e = Engine::new(EngineConfig {
        threads,
        // Small enough that the transitive-closure rewriting budgets out
        // (pinning the `complete=false` serving path), large enough that
        // every other tenant's rewriting saturates.
        rewrite_budget: RewriteBudget {
            max_queries: 24,
            max_generated: 800,
            max_atoms: 8,
        },
        ..EngineConfig::default()
    });
    e.register(
        "path",
        "e(X,Y) -> e(Y,Z).",
        "e(a,b). e(b,c). e(c,d). e(x,y).",
    )
    .unwrap();
    e.register(
        "family",
        "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
        "mother(ann,bob). mother(bob,carol). human(dave).",
    )
    .unwrap();
    e.register(
        "guarded",
        "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
        "q(s). e(s,t). e(t,u).",
    )
    .unwrap();
    e.register("tc", "e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d).")
        .unwrap();
    e
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/replays/smoke.trace")
}

#[test]
fn replay_trace_pinned_byte_identical_across_thread_counts() {
    let mut traces = Vec::new();
    let mut responses_at_one: Vec<Response> = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut engine = smoke_engine(threads);
        let responses = engine.replay(REQUESTS).expect("smoke replay parses");
        if threads == 1 {
            responses_at_one = responses.clone();
        }
        traces.push((threads, render_trace(&responses)));
    }
    let (_, reference) = &traces[0];
    for (threads, trace) in &traces {
        assert_eq!(
            trace, reference,
            "trace at {threads} threads diverges from 1 thread"
        );
    }

    // The smoke stream exercises every serving path.
    let tiers = |r: &Response| match &r.status {
        ResponseStatus::Answered { tier, .. } => Some(*tier),
        ResponseStatus::Rejected { .. } | ResponseStatus::Written { .. } => None,
    };
    let hits = responses_at_one
        .iter()
        .filter(|r| tiers(r) == Some(Tier::Hit))
        .count();
    let misses = responses_at_one
        .iter()
        .filter(|r| tiers(r) == Some(Tier::Miss))
        .count();
    let rejected = responses_at_one
        .iter()
        .filter(|r| matches!(&r.status, ResponseStatus::Rejected { .. }))
        .count();
    let written = responses_at_one
        .iter()
        .filter(|r| matches!(&r.status, ResponseStatus::Written { .. }))
        .count();
    assert!(hits >= 4, "isomorphic/hot repeats must hit, got {hits}");
    assert!(misses >= 6, "cold shapes must miss, got {misses}");
    assert_eq!(rejected, 3, "unknown theory (query + write) + parse error");
    assert_eq!(written, 2, "insert + retract on the path tenant");
    assert!(
        responses_at_one.iter().any(|r| matches!(
            &r.status,
            ResponseStatus::Answered {
                complete: false,
                ..
            }
        )),
        "the tc tenant must serve a budget-capped (incomplete) rewriting"
    );

    // Byte-for-byte pin against the committed golden trace.
    if std::env::var_os("QR_BLESS").is_some() {
        std::fs::write(golden_path(), reference).expect("bless golden trace");
        return;
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden trace missing — regenerate with QR_BLESS=1");
    assert_eq!(
        reference, &golden,
        "trace drifted from tests/replays/smoke.trace (QR_BLESS=1 to re-pin intentionally)"
    );
}
