//! Micro-benchmarks for the marked-query process (E3/E9's workload):
//! `rew(φ_R^n)` under `T_d`, the `T_d^K` levels, and rank computation
//! (the termination certificate of Lemma 53).

use qr_bench::microbench::{bench, group};
use qr_core::marked::{rewrite_td, rewrite_tdk, ColorMap, MarkedQuery};
use qr_core::ranks::qrk;
use qr_core::theories::{phi_n, phi_r_n};

fn bench_marked_process() {
    group("marked/rewrite_td");
    for n in [1usize, 2, 3, 4] {
        let q = phi_r_n(n);
        bench(&format!("phi_r/{n}"), || {
            rewrite_td(&q, 10_000_000).unwrap().disjuncts.len()
        });
    }
}

fn bench_tdk_levels() {
    group("marked/rewrite_tdk");
    for (hi, lo) in [("i2", "i1"), ("i3", "i2")] {
        let q = phi_n(2, hi, lo);
        bench(&format!("level/{hi}"), || {
            rewrite_tdk(3, &q, 10_000_000).unwrap().disjuncts.len()
        });
    }
}

fn bench_rank_computation() {
    let colors = ColorMap::td();
    group("marked/qrk");
    for n in [1usize, 2, 3] {
        let seeds = MarkedQuery::markings_of(&phi_r_n(n), &colors).unwrap();
        bench(&format!("phi_r/{n}"), || {
            seeds
                .iter()
                .map(|s| qrk(s, 2).components().len())
                .sum::<usize>()
        });
    }
}

fn main() {
    bench_marked_process();
    bench_tdk_levels();
    bench_rank_computation();
}
