//! Linear replay of chase certificates.
//!
//! The chase engine *searched* for triggers with join plans and posting
//! lists; this checker only *verifies* recorded triggers. Per derived
//! fact the work is: unify each regular body atom with its recorded
//! trigger fact (one pass over the atom's arguments), resolve each `dom`
//! atom through its recorded occurrence witness, re-apply the Skolemized
//! head via [`qr_chase::SkolemizedRule::apply_with_frontier`], and
//! compare the certified fact literally. Well-foundedness is enforced by
//! fact-index ordering: every reference points strictly below the fact
//! being certified, so a bundle that replays proves containment of the
//! derived facts in `Ch_∞(T, base)`.

use std::collections::HashMap;

use qr_chase::{ChaseCertBundle, SkolemizedRule};
use qr_syntax::{Fact, Instance, QTerm, TermId, Theory, Var};

use crate::error::{CheckError, CheckErrorKind};

/// Verifies a shard's exported frontier before it is absorbed: `frontier`
/// claims to be facts derivable from `base`, and `bundle` must certify
/// exactly those facts (one certificate per frontier fact, in order, with
/// `bundle.base == base.len()`). The frontier facts are appended to a
/// copy of `base` and the bundle is replayed with [`check_chase`] — no
/// homomorphism search, pure linear replay. Returns the number of
/// certificates replayed.
///
/// This is the verification gate of the sharded chase's frontier
/// exchange (`qr_chase::sharded`): a receiving shard never trusts a
/// peer's derived facts, only their certificates.
pub fn check_frontier(
    theory: &Theory,
    base: &Instance,
    frontier: &[Fact],
    bundle: &ChaseCertBundle,
) -> Result<usize, CheckError> {
    if bundle.base as usize != base.len() {
        return Err(CheckError::at(
            0,
            CheckErrorKind::BaseMismatch {
                base: bundle.base,
                facts: base.len(),
            },
        ));
    }
    if bundle.certs.len() != frontier.len() {
        return Err(CheckError::at(
            0,
            CheckErrorKind::CertCount {
                expected: frontier.len(),
                got: bundle.certs.len(),
            },
        ));
    }
    let mut inst = base.clone();
    for (k, fact) in frontier.iter().enumerate() {
        if inst.insert(fact.clone()).is_none() {
            // Already present: certificate indices cannot line up.
            let index = inst.index_of(fact).expect("duplicate fact has an index");
            return Err(CheckError::at(
                k,
                CheckErrorKind::FrontierDuplicate {
                    index: index as u32,
                },
            ));
        }
    }
    check_chase(theory, &inst, bundle)
}

/// Replays a chase certificate bundle against the theory and the chased
/// instance. On success, every fact beyond the bundle's base has been
/// re-derived from strictly earlier facts by the recorded rule
/// applications; the number of certificates replayed is returned.
pub fn check_chase(
    theory: &Theory,
    inst: &Instance,
    bundle: &ChaseCertBundle,
) -> Result<usize, CheckError> {
    let base = bundle.base as usize;
    if base > inst.len() {
        return Err(CheckError::at(
            0,
            CheckErrorKind::BaseMismatch {
                base: bundle.base,
                facts: inst.len(),
            },
        ));
    }
    if base + bundle.certs.len() != inst.len() {
        return Err(CheckError::at(
            0,
            CheckErrorKind::CertCount {
                expected: inst.len() - base,
                got: bundle.certs.len(),
            },
        ));
    }

    // Per-rule split of the body into regular / `dom` atom positions
    // (body order), plus the Skolemization — computed once.
    let rules: Vec<(Vec<usize>, Vec<usize>, SkolemizedRule)> = theory
        .rules()
        .iter()
        .map(|rule| {
            let mut regular = Vec::new();
            let mut dom = Vec::new();
            for (i, a) in rule.body().iter().enumerate() {
                if a.pred.is_dom() {
                    dom.push(i);
                } else {
                    regular.push(i);
                }
            }
            (regular, dom, SkolemizedRule::new(rule))
        })
        .collect();

    for (k, cert) in bundle.certs.iter().enumerate() {
        let expected = (base + k) as u32;
        if cert.fact != expected {
            return Err(CheckError::at(
                k,
                CheckErrorKind::FactIndexMismatch {
                    expected,
                    got: cert.fact,
                },
            ));
        }
        if cert.rule as usize >= theory.rules().len() {
            return Err(CheckError::at(
                k,
                CheckErrorKind::RuleOutOfRange {
                    rule: cert.rule,
                    rules: theory.rules().len(),
                },
            ));
        }
        let rule = &theory.rules()[cert.rule as usize];
        let (regular, dom, sk) = &rules[cert.rule as usize];

        if cert.trigger.len() != regular.len() {
            return Err(CheckError::at(
                k,
                CheckErrorKind::TriggerCount {
                    expected: regular.len(),
                    got: cert.trigger.len(),
                },
            ));
        }
        let mut bound: HashMap<Var, TermId> = HashMap::new();
        for (slot, (&t, &bi)) in cert.trigger.iter().zip(regular).enumerate() {
            if t >= cert.fact {
                return Err(CheckError::at(
                    k,
                    CheckErrorKind::TriggerNotEarlier { slot, index: t },
                ));
            }
            let fact = inst.fact(t as usize);
            let atom = &rule.body()[bi];
            if fact.pred != atom.pred {
                return Err(CheckError::at(k, CheckErrorKind::TriggerClash { slot }));
            }
            for (pos, qt) in atom.args.iter().enumerate() {
                let ft = fact.args[pos];
                let ok = match qt {
                    QTerm::Const(c) => TermId::constant(*c) == ft,
                    QTerm::Var(v) => *bound.entry(*v).or_insert(ft) == ft,
                };
                if !ok {
                    return Err(CheckError::at(k, CheckErrorKind::TriggerClash { slot }));
                }
            }
        }

        if cert.dom.len() != dom.len() {
            return Err(CheckError::at(
                k,
                CheckErrorKind::DomCount {
                    expected: dom.len(),
                    got: cert.dom.len(),
                },
            ));
        }
        for (slot, (&(wf, wp), &bi)) in cert.dom.iter().zip(dom).enumerate() {
            if wf >= cert.fact {
                return Err(CheckError::at(
                    k,
                    CheckErrorKind::DomWitnessNotEarlier { slot, index: wf },
                ));
            }
            let fact = inst.fact(wf as usize);
            if wp as usize >= fact.args.len() {
                return Err(CheckError::at(
                    k,
                    CheckErrorKind::DomWitnessOutOfRange { slot },
                ));
            }
            let t = fact.args[wp as usize];
            let ok = match rule.body()[bi].args[0] {
                QTerm::Const(c) => TermId::constant(c) == t,
                QTerm::Var(v) => *bound.entry(v).or_insert(t) == t,
            };
            if !ok {
                return Err(CheckError::at(k, CheckErrorKind::DomMismatch { slot }));
            }
        }

        // Every head variable must now be resolvable: Skolemized
        // existentials are synthesized, the rest must be bound.
        for a in rule.head() {
            for v in a.vars() {
                if !sk.skolem_of.contains_key(&v) && !bound.contains_key(&v) {
                    return Err(CheckError::at(
                        k,
                        CheckErrorKind::UnboundVariable { var: v.0 },
                    ));
                }
            }
        }
        let mut frontier_args = Vec::with_capacity(sk.frontier.len());
        for v in &sk.frontier {
            match bound.get(v) {
                Some(t) => frontier_args.push(*t),
                None => {
                    return Err(CheckError::at(
                        k,
                        CheckErrorKind::UnboundVariable { var: v.0 },
                    ))
                }
            }
        }
        let produced = sk.apply_with_frontier(rule, &frontier_args, |v| bound[&v]);
        let derived = inst.fact(cert.fact as usize);
        if !produced
            .iter()
            .any(|f| f.pred == derived.pred && f.args[..] == *derived.args)
        {
            return Err(CheckError::at(k, CheckErrorKind::FactNotInHead));
        }
    }

    Ok(bundle.certs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_chase::{chase, emit_chase_certs, ChaseBudget};
    use qr_syntax::{parse_instance, parse_theory};

    fn certified(t: &str, db: &str) -> (Theory, Instance, ChaseCertBundle) {
        let theory = parse_theory(t).unwrap();
        let d = parse_instance(db).unwrap();
        let c = chase(&theory, &d, ChaseBudget::default());
        let bundle = emit_chase_certs(&theory, &c);
        (theory, c.instance, bundle)
    }

    #[test]
    fn replays_transitive_closure() {
        let (t, inst, b) = certified("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d).");
        let n = check_chase(&t, &inst, &b).unwrap();
        assert_eq!(n, inst.len() - 3);
        assert!(n >= 3, "TC of a 3-path derives at least 3 facts");
    }

    #[test]
    fn replays_existentials_and_dom_atoms() {
        let (t, inst, b) = certified("human(X) -> mother(X,Y).\ndom(X) -> p(X).", "human(abel).");
        assert_eq!(check_chase(&t, &inst, &b).unwrap(), b.len());
        assert!(!b.is_empty());
    }

    #[test]
    fn rejects_a_forward_trigger_with_location() {
        let (t, inst, mut b) = certified("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d).");
        // Point a trigger at the certified fact itself: circular.
        let k = 0;
        b.certs[k].trigger[0] = b.certs[k].fact;
        let e = check_chase(&t, &inst, &b).unwrap_err();
        assert_eq!(e.cert, k);
        assert!(matches!(
            e.kind,
            CheckErrorKind::TriggerNotEarlier { slot: 0, .. }
        ));
    }

    /// A shard's export: its base, its derived facts, and their bundle.
    fn frontier_of(t: &str, db: &str) -> (Theory, Instance, Vec<Fact>, ChaseCertBundle) {
        let theory = parse_theory(t).unwrap();
        let d = parse_instance(db).unwrap();
        let c = chase(&theory, &d, ChaseBudget::default());
        let bundle = emit_chase_certs(&theory, &c);
        let frontier: Vec<Fact> = (d.len()..c.instance.len())
            .map(|i| c.instance.fact(i).to_fact())
            .collect();
        (theory, d, frontier, bundle)
    }

    #[test]
    fn frontier_replay_accepts_a_shard_export() {
        let (t, base, frontier, b) = frontier_of("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c).");
        assert_eq!(frontier.len(), 1); // e(a,c)
        assert_eq!(check_frontier(&t, &base, &frontier, &b).unwrap(), 1);
    }

    #[test]
    fn frontier_rejects_a_forged_fact_with_location() {
        let (t, base, mut frontier, b) =
            frontier_of("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d).");
        // Smuggle an underivable fact in place of a certified one: the
        // replay of its certificate must fail, locating the forgery.
        let k = frontier.len() - 1;
        frontier[k] = parse_instance("e(z,z).").unwrap().fact(0).to_fact();
        let e = check_frontier(&t, &base, &frontier, &b).unwrap_err();
        assert_eq!(e.cert, k);
        assert!(matches!(e.kind, CheckErrorKind::FactNotInHead));
    }

    #[test]
    fn frontier_rejects_base_and_count_mismatches() {
        let (t, base, frontier, b) = frontier_of("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c).");
        let mut small = Instance::new();
        small.insert(base.fact(0).to_fact());
        let e = check_frontier(&t, &small, &frontier, &b).unwrap_err();
        assert!(matches!(e.kind, CheckErrorKind::BaseMismatch { .. }));
        let e = check_frontier(&t, &base, &[], &b).unwrap_err();
        assert!(matches!(
            e.kind,
            CheckErrorKind::CertCount {
                expected: 0,
                got: 1
            }
        ));
    }

    #[test]
    fn frontier_rejects_a_duplicate_of_a_base_fact() {
        let (t, base, mut frontier, b) =
            frontier_of("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c).");
        frontier[0] = base.fact(0).to_fact();
        let e = check_frontier(&t, &base, &frontier, &b).unwrap_err();
        assert_eq!(e.cert, 0);
        assert!(matches!(
            e.kind,
            CheckErrorKind::FrontierDuplicate { index: 0 }
        ));
    }
}
