//! Sharded chase: partition the base instance, chase each shard
//! independently, merge into one [`Chase`] byte-identical to the
//! unsharded run (~S24).
//!
//! The monolithic engine already parallelizes *within* a round
//! ([`chase_with`] schedules per-round tasks on the executor), but every
//! task still probes one global fact store whose postings interleave all
//! components. For bulk instances — thousands of disconnected Gaifman
//! components, millions of facts (the shallow-chase ontology shapes of
//! Kikot et al., the frontier-guarded theories of Barceló et al.) — the
//! chase is embarrassingly parallel *across* components, and each
//! per-component store is small enough to stay cache-resident. This
//! module exploits that:
//!
//! 1. **Partition.** Compute the connected components of the base
//!    instance's Gaifman graph ([`gaifman::components_of`], straight off
//!    the columnar postings) and bin-pack them deterministically into at
//!    most `exec.threads() × shards_per_thread` shards (largest first,
//!    least-loaded bin, all ties by index). When the theory is not
//!    term-local (see below) but every rule is still `dom`-free, fall
//!    back to a coarser partition by *predicate group* (union-find over
//!    each rule's body ∪ head predicates).
//! 2. **Chase.** Run the existing sequential engine on each shard,
//!    scheduling whole shards on the executor's workers
//!    ([`qr_exec::Executor::map_weighted`], largest shard first).
//! 3. **Merge.** Splice the shard runs back into a single [`Chase`] —
//!    facts, round snapshots, provenance, per-round counters — that is
//!    **byte-identical** to `chase_with(theory, db, budget, exec)` on the
//!    whole instance. No re-chasing, no re-matching: the merge is a
//!    deterministic re-sort of the shards' per-round deltas into the
//!    global engine's emission order, with fact indices renumbered
//!    through per-shard monotone `local → global` maps.
//!
//! Byte-identity holds because the engine visits round work in a fixed
//! order (rules in theory order; per rule, regular body atoms in body
//! order; per atom, the delta posting list in fact-index order) and
//! merges task outputs in submission order. Under the safety predicates
//! below, every complete body match lives inside one shard, so the
//! global round-`r` fresh sequence is exactly the shard round-`r` fresh
//! sequences stably sorted by `(rule, canonical path atom, global index
//! of the forced delta fact)` — the same key the sequential engine
//! enumerates by. Engine counters (`triggers`, `candidates`, …) are
//! posting-local under the same predicates and therefore sum exactly.
//!
//! **Term-local theories** (mode [`ShardMode::Gaifman`]): every rule has
//! a nonempty, variable-connected body, no `dom` atoms, and every body
//! and head atom has at least one argument, all variables — plus the
//! base domain is all constants. Then every match stays inside one
//! component, every derived fact embeds a frontier term of its
//! component (directly or inside a Skolem term), and components never
//! collide.
//!
//! **Pred-local theories** (mode [`ShardMode::PredGroup`]): every rule
//! has a nonempty `dom`-free body and a `dom`-free head (constants and
//! disconnected bodies are fine). All facts of one predicate live in
//! one shard, so per-predicate probes — including the matcher's
//! no-bound-position fallback scan — remain shard-local.
//!
//! **Cross-shard theories.** Anything else (a `dom` atom ranges over the
//! whole active domain; an empty body fires everywhere) cannot be
//! chased shard-locally. The default is a transparent fallback to the
//! monolithic engine ([`ShardMode::Fallback`]). Opting into
//! [`CrossShardPolicy::Exchange`] instead runs a *certified frontier
//! exchange*: each shard is chased independently, ships its derived
//! facts with [`ChaseCert`](crate::cert::ChaseCert) witnesses, and the
//! merging side replays the certificates through an independent checker
//! (`qr-check`, injected as a callback to keep the crate graph acyclic)
//! before absorbing the facts into the base; a final global chase
//! closes the cross-shard consequences. Soundness never depends on
//! scheduling: a bundle that fails verification is simply not absorbed
//! (the global catch-up re-derives whatever was legitimate), and by the
//! paper's Observation 8 (`Ch(T,F) = Ch(T,D)` for `D ⊆ F ⊆ Ch(T,D)`)
//! the absorbed run computes the same set — the exchange only changes
//! *when* facts arrive, so the result is set-equal (not byte-identical)
//! to the unsharded chase whenever the chase terminates within budget.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

use qr_exec::Executor;
use qr_syntax::gaifman;
use qr_syntax::query::{QAtom, QTerm, Var};
use qr_syntax::{Fact, FactIdx, Instance, Pred, TermId, Theory};

use crate::cert::{emit_chase_certs, ChaseCertBundle};
use crate::engine::{chase_with, Chase, ChaseBudget, ChaseOutcome, Derivation};
use crate::stats::{ChaseStats, RoundStats};

/// How the sharded entry point actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardMode {
    /// Sharding would not help (one thread, one component, empty base):
    /// the run was handed to the monolithic engine unchanged.
    #[default]
    Bypass,
    /// Term-local theory, partitioned by Gaifman component.
    Gaifman,
    /// Pred-local theory, partitioned by predicate group.
    PredGroup,
    /// Cross-shard theory under [`CrossShardPolicy::Fallback`]: ran the
    /// monolithic engine.
    Fallback,
    /// Cross-shard theory under [`CrossShardPolicy::Exchange`]: certified
    /// frontier exchange plus a global catch-up chase.
    Exchange,
}

impl ShardMode {
    /// Stable lowercase name (serialized into `BENCH_chase.json`).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardMode::Bypass => "bypass",
            ShardMode::Gaifman => "gaifman",
            ShardMode::PredGroup => "pred-group",
            ShardMode::Fallback => "fallback",
            ShardMode::Exchange => "exchange",
        }
    }
}

/// A located rejection of one shard's frontier bundle: which certificate
/// failed replay, and the checker's message. Produced by the injected
/// verifier (see [`CrossShardPolicy::Exchange`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierRejection {
    /// Index of the offending certificate within the shard's bundle.
    pub cert: usize,
    /// The checker's rendered error.
    pub detail: String,
}

impl fmt::Display for FrontierRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate {}: {}", self.cert, self.detail)
    }
}

/// Independent verifier for one shard's frontier: given the theory, the
/// shard's *base* instance, the frontier facts (the shard's derived
/// facts in derivation order) and their certificate bundle, replay every
/// certificate and return how many were checked — or the first located
/// failure. `qr-check::check_frontier` has exactly this shape; it is
/// injected as a callback because `qr-check` depends on `qr-chase`.
pub type FrontierVerify<'a> = dyn Fn(&Theory, &Instance, &[Fact], &ChaseCertBundle) -> Result<usize, FrontierRejection>
    + Sync
    + 'a;

/// What to do when the theory's rules span shards.
pub enum CrossShardPolicy<'a> {
    /// Run the monolithic engine (byte-identical by construction).
    Fallback,
    /// Chase shards independently anyway and absorb their frontiers at
    /// the merge point, gated on certificate replay by `verify`; a final
    /// global chase closes cross-shard consequences. Set-equal to the
    /// unsharded chase on terminating runs; never absorbs an unverified
    /// fact.
    Exchange {
        /// The certificate replayer (typically `qr-check`'s
        /// `check_frontier`, adapted to [`FrontierRejection`]).
        verify: &'a FrontierVerify<'a>,
    },
}

/// Tuning knobs for [`chase_sharded_opts`].
pub struct ShardOpts<'a> {
    /// Bin-packing target: at most `exec.threads() × shards_per_thread`
    /// shards. More shards than threads keeps workers busy when
    /// component sizes are skewed; the default is 4.
    pub shards_per_thread: usize,
    /// Policy for theories whose rules span shards.
    pub cross_shard: CrossShardPolicy<'a>,
}

impl Default for ShardOpts<'static> {
    fn default() -> Self {
        ShardOpts {
            shards_per_thread: 4,
            cross_shard: CrossShardPolicy::Fallback,
        }
    }
}

/// Observability for one sharded run, alongside the merged [`Chase`].
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// How the run was actually executed.
    pub mode: ShardMode,
    /// Partition units found: Gaifman components ([`ShardMode::Gaifman`]
    /// and [`ShardMode::Exchange`]) or predicate groups
    /// ([`ShardMode::PredGroup`]). 0 when partitioning was skipped.
    pub components: usize,
    /// Shards actually chased (0 on bypass/fallback).
    pub shards: usize,
    /// Frontier-exchange iterations performed (exchange mode: 1 if any
    /// bundle was absorbed, else 0; deeper iterated exchange is a
    /// ROADMAP follow-on).
    pub frontier_rounds: usize,
    /// Certificates shipped across the merge boundary.
    pub certs_exchanged: u64,
    /// Certificates that replayed successfully.
    pub certs_checked: u64,
    /// Certificates in rejected bundles (a bundle is absorbed atomically,
    /// so one bad certificate rejects its whole shard's frontier).
    pub certs_rejected: u64,
    /// `HomKernel` searches observed while verifying frontiers — pinned
    /// at 0: certificate replay is linear-time and search-free.
    pub kernel_searches: u64,
    /// Located verification failures: `(shard, rejection)`.
    pub rejections: Vec<(usize, FrontierRejection)>,
    /// Wall time partitioning the base (component analysis + packing +
    /// splitting).
    pub partition_wall: Duration,
    /// Wall time chasing the shards (the parallel region).
    pub shard_wall: Duration,
    /// Wall time merging shard results (or verifying + catch-up chasing
    /// in exchange mode).
    pub merge_wall: Duration,
}

/// Sharded chase with default options (cross-shard theories fall back to
/// the monolithic engine). The returned [`Chase`] is byte-identical —
/// fact stream, domain order, round snapshots, provenance, drift-gated
/// counters — to `chase_with(theory, db, budget, exec)`.
pub fn chase_sharded(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
) -> (Chase, ShardStats) {
    chase_sharded_opts(theory, db, budget, exec, &ShardOpts::default())
}

/// Sharded chase with explicit [`ShardOpts`]. See the module docs for
/// the partition modes and the exchange protocol.
pub fn chase_sharded_opts(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
    opts: &ShardOpts<'_>,
) -> (Chase, ShardStats) {
    let t0 = Instant::now();
    let mut stats = ShardStats::default();
    if exec.threads() <= 1 || db.is_empty() {
        stats.partition_wall = t0.elapsed();
        return (chase_with(theory, db, budget, exec), stats);
    }
    let bins_max = exec.threads().saturating_mul(opts.shards_per_thread).max(1);

    if term_safe(theory) && db.domain().iter().all(|t| t.is_const()) {
        let (unit_of_fact, units) = gaifman_units(db);
        stats.components = units.saturating_sub(1); // minus the nullary pen
        return run_partitioned(
            theory,
            db,
            budget,
            exec,
            ShardMode::Gaifman,
            unit_of_fact,
            units,
            bins_max,
            t0,
            stats,
        );
    }
    if pred_safe(theory) {
        let (group_of, groups) = pred_groups(theory, db);
        stats.components = groups;
        let unit_of_fact: Vec<usize> = (0..db.len()).map(|i| group_of[&db.fact(i).pred]).collect();
        return run_partitioned(
            theory,
            db,
            budget,
            exec,
            ShardMode::PredGroup,
            unit_of_fact,
            groups,
            bins_max,
            t0,
            stats,
        );
    }
    match opts.cross_shard {
        CrossShardPolicy::Fallback => {
            stats.mode = ShardMode::Fallback;
            stats.partition_wall = t0.elapsed();
            (chase_with(theory, db, budget, exec), stats)
        }
        CrossShardPolicy::Exchange { verify } => {
            chase_exchange(theory, db, budget, exec, verify, bins_max, t0, stats)
        }
    }
}

/// `true` iff every rule confines its matches and its derived facts to
/// one Gaifman component of a constants-only base: nonempty
/// variable-connected body, no `dom` atoms anywhere, every body and head
/// atom of arity ≥ 1 with all-variable arguments, and a nonempty
/// frontier (some variable shared body ↔ head). See the module docs for
/// why each clause is load-bearing.
fn term_safe(theory: &Theory) -> bool {
    fn atom_ok(a: &QAtom) -> bool {
        !a.pred.is_dom() && !a.args.is_empty() && a.args.iter().all(|t| matches!(t, QTerm::Var(_)))
    }
    theory.rules().iter().all(|r| {
        let body = r.body();
        if body.is_empty() || !body.iter().all(atom_ok) || !r.head().iter().all(atom_ok) {
            return false;
        }
        if !gaifman::atoms_connected(body) {
            return false;
        }
        let body_vars: HashSet<Var> = body.iter().flat_map(|a| a.vars()).collect();
        r.head()
            .iter()
            .flat_map(|a| a.vars())
            .any(|v| body_vars.contains(&v))
    })
}

/// `true` iff every rule's matches stay inside one predicate group:
/// nonempty body, no `dom` atoms in body or head. Constants, nullary
/// atoms and disconnected bodies are all fine — every fact of a
/// predicate lives in its group's shard, and the matcher only ever scans
/// per-predicate postings.
fn pred_safe(theory: &Theory) -> bool {
    theory.rules().iter().all(|r| {
        !r.body().is_empty()
            && r.body()
                .iter()
                .chain(r.head().iter())
                .all(|a| !a.pred.is_dom())
    })
}

/// Partition units for term-local theories: one unit per Gaifman
/// component (numbered in first-occurrence domain order), plus a final
/// pen for nullary facts (inert under term-local rules — no atom of
/// arity 0 can appear in a body or head). Returns `(unit per fact,
/// number of units)`.
fn gaifman_units(db: &Instance) -> (Vec<usize>, usize) {
    let comps = gaifman::components_of(db);
    let mut unit_of_term: HashMap<TermId, usize> = HashMap::with_capacity(db.domain().len());
    for (c, comp) in comps.iter().enumerate() {
        for &t in comp {
            unit_of_term.insert(t, c);
        }
    }
    let nullary = comps.len();
    let unit_of_fact: Vec<usize> = (0..db.len())
        .map(|i| db.fact(i).args.first().map_or(nullary, |t| unit_of_term[t]))
        .collect();
    (unit_of_fact, nullary + 1)
}

/// Path-halving union-find lookup.
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Interns a predicate into the union-find, in first-occurrence order.
fn intern(p: Pred, id: &mut HashMap<Pred, usize>, parent: &mut Vec<usize>) -> usize {
    if let Some(&i) = id.get(&p) {
        return i;
    }
    let i = parent.len();
    parent.push(i);
    id.insert(p, i);
    i
}

/// Predicate groups for pred-local theories: union-find over each rule's
/// body ∪ head predicates; instance predicates mentioned by no rule get
/// singleton groups. Group numbers are assigned in predicate
/// first-occurrence order (rules first, then the instance), so the
/// partition is deterministic. Returns `(group per pred, group count)`.
fn pred_groups(theory: &Theory, db: &Instance) -> (HashMap<Pred, usize>, usize) {
    let mut id: HashMap<Pred, usize> = HashMap::new();
    let mut parent: Vec<usize> = Vec::new();
    for r in theory.rules() {
        let mut root: Option<usize> = None;
        for a in r.body().iter().chain(r.head().iter()) {
            let i = intern(a.pred, &mut id, &mut parent);
            let ri = find(&mut parent, i);
            root = Some(match root {
                None => ri,
                Some(r0) => {
                    let r0 = find(&mut parent, r0);
                    if r0 == ri {
                        r0
                    } else {
                        let (lo, hi) = if r0 < ri { (r0, ri) } else { (ri, r0) };
                        parent[hi] = lo;
                        lo
                    }
                }
            });
        }
    }
    for p in db.preds() {
        intern(p, &mut id, &mut parent);
    }
    let mut by_intern: Vec<(usize, Pred)> = id.iter().map(|(&p, &i)| (i, p)).collect();
    by_intern.sort_by_key(|&(i, _)| i);
    let mut group_no: HashMap<usize, usize> = HashMap::new();
    let mut group_of: HashMap<Pred, usize> = HashMap::new();
    for (i, p) in by_intern {
        let root = find(&mut parent, i);
        let next = group_no.len();
        let g = *group_no.entry(root).or_insert(next);
        group_of.insert(p, g);
    }
    let n = group_no.len();
    (group_of, n)
}

/// Deterministic bin-packing of partition units into at most `bins_max`
/// shards: units sorted by (size desc, unit id asc), each assigned to
/// the least-loaded bin (ties to the lowest bin index). Zero-size units
/// place no facts and are ignored. Returns `(bin per unit, bin count)`.
fn pack(size: &[usize], bins_max: usize) -> (Vec<usize>, usize) {
    let mut order: Vec<usize> = (0..size.len()).filter(|&u| size[u] > 0).collect();
    let bins = bins_max.min(order.len()).max(1);
    order.sort_by_key(|&u| (std::cmp::Reverse(size[u]), u));
    let mut load = vec![0usize; bins];
    let mut bin_of = vec![0usize; size.len()];
    for u in order {
        let b = (0..bins)
            .min_by_key(|&b| (load[b], b))
            .expect("at least one bin");
        bin_of[u] = b;
        load[b] += size[u];
    }
    (bin_of, bins)
}

/// The shard-local path: split, chase each shard sequentially on the
/// worker pool, splice the results back together byte-identically.
#[allow(clippy::too_many_arguments)]
fn run_partitioned(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
    mode: ShardMode,
    unit_of_fact: Vec<usize>,
    units: usize,
    bins_max: usize,
    t0: Instant,
    mut stats: ShardStats,
) -> (Chase, ShardStats) {
    let mut size = vec![0usize; units];
    for &u in &unit_of_fact {
        size[u] += 1;
    }
    if size.iter().filter(|&&s| s > 0).count() <= 1 {
        // Single-component / single-group base: sharding buys nothing.
        stats.partition_wall = t0.elapsed();
        return (chase_with(theory, db, budget, exec), stats);
    }
    let (bin_of_unit, bins) = pack(&size, bins_max);
    stats.mode = mode;
    stats.shards = bins;
    let shard_of: Vec<usize> = unit_of_fact.iter().map(|&u| bin_of_unit[u]).collect();
    let parts = db.split_by(&shard_of, bins);
    let mut loc2glob: Vec<Vec<FactIdx>> = vec![Vec::new(); bins];
    for (i, &s) in shard_of.iter().enumerate() {
        loc2glob[s].push(i);
    }
    stats.partition_wall = t0.elapsed();

    let t1 = Instant::now();
    let shard_chases: Vec<Chase> = exec.map_weighted(
        &parts,
        |p| p.len() as u64,
        |p| chase_with(theory, p, budget, &Executor::sequential()),
    );
    stats.shard_wall = t1.elapsed();

    let t2 = Instant::now();
    let merged = merge_shards(db, budget, exec.threads(), &shard_chases, &mut loc2glob);
    stats.merge_wall = t2.elapsed();
    (merged, stats)
}

/// Splices shard chases into the [`Chase`] the monolithic engine would
/// have produced on the whole base.
///
/// Per round `r`, the global engine's fresh sequence is the shards'
/// round-`r` fresh sequences stably sorted by the enumeration key
/// `(rule, canonical path atom k*, global index of the forced delta
/// fact)`, where `k*` is the first regular trigger slot holding a
/// previous-delta fact — exactly the engine's canonical-path rule. The
/// per-shard `local → global` index maps are monotone (built from the
/// order-preserving [`Instance::split_by`] and extended here in merge
/// order), so intra-shard relative order — which the key does not
/// discriminate — is already global order, and a stable sort suffices.
/// Counters sum; fact/term growth and the round/outcome bookkeeping are
/// re-measured on the merged instance, replaying the engine's loop
/// (fixpoint probe row, budget break after the round's snapshot).
fn merge_shards(
    db: &Instance,
    budget: ChaseBudget,
    threads: usize,
    shard_chases: &[Chase],
    loc2glob: &mut [Vec<FactIdx>],
) -> Chase {
    let mut instance = db.clone();
    let mut round_of: Vec<usize> = vec![0; instance.len()];
    let mut derivations: Vec<Option<Derivation>> = vec![None; instance.len()];
    let mut outcome = ChaseOutcome::Exhausted;
    let mut rounds = 0;
    let mut stats = ChaseStats {
        threads,
        ..ChaseStats::default()
    };
    let mut round_snapshots = vec![instance.snapshot()];

    for round in 1..=budget.max_rounds {
        // Shard events of this round, keyed for the global emission order.
        let mut events: Vec<((usize, usize, FactIdx), usize, FactIdx)> = Vec::new();
        for (s, ch) in shard_chases.iter().enumerate() {
            if let Some(range) = ch.delta_range(round) {
                for i in range {
                    let d = ch.derivations[i]
                        .as_ref()
                        .expect("derived facts carry provenance");
                    let kstar = d
                        .trigger
                        .iter()
                        .position(|&fi| ch.round_of[fi] + 1 == round)
                        .expect("semi-naive triggers use a previous-delta fact");
                    events.push(((d.rule, kstar, loc2glob[s][d.trigger[kstar]]), s, i));
                }
            }
        }
        // Engine counters sum across shards: every trigger, candidate
        // scan and staging decision of the global round happened in
        // exactly one shard (matches and probes are shard-local under
        // the safety predicates). A shard has a row for round `r` iff
        // its own run executed round `r`; absent rows contribute 0,
        // mirroring the empty deltas those shards would have globally.
        let mut row = RoundStats {
            round,
            ..RoundStats::default()
        };
        for ch in shard_chases {
            if let Some(r) = ch.stats.rounds.get(round - 1) {
                debug_assert_eq!(r.round, round);
                row.triggers += r.triggers;
                row.candidates += r.candidates;
                row.dom_sweeps += r.dom_sweeps;
                row.dom_pruned += r.dom_pruned;
                row.enum_wall += r.enum_wall;
                row.merge_wall += r.merge_wall;
            }
        }
        row.wall = row.enum_wall + row.merge_wall;

        if events.is_empty() {
            // Every still-active shard ran its fixpoint probe this round;
            // the summed row is the global probe row.
            stats.rounds.push(row);
            outcome = ChaseOutcome::Fixpoint;
            break;
        }

        events.sort_by_key(|&(key, _, _)| key); // stable: intra-shard order survives
        let facts_before = instance.len();
        let terms_before = instance.domain_len();
        for &(_, s, i) in &events {
            let gi = instance
                .insert(shard_chases[s].instance.fact(i).to_fact())
                .expect("shards stage disjoint fresh facts");
            debug_assert_eq!(loc2glob[s].len(), i, "shard facts merge in local order");
            loc2glob[s].push(gi);
            let d = shard_chases[s].derivations[i]
                .as_ref()
                .expect("checked above");
            derivations.push(Some(Derivation {
                rule: d.rule,
                trigger: d.trigger.iter().map(|&fi| loc2glob[s][fi]).collect(),
                frontier: d.frontier.clone(),
                round,
            }));
            round_of.push(round);
        }
        row.facts_added = instance.len() - facts_before;
        row.terms_added = instance.domain_len() - terms_before;
        stats.rounds.push(row);
        rounds = round;
        round_snapshots.push(instance.snapshot());
        if instance.len() > budget.max_facts {
            break;
        }
    }

    let len = instance.len();
    let mem = instance.stats();
    stats.peak_facts = mem.peak_facts;
    stats.bytes_facts = mem.bytes_facts;
    stats.bytes_index = mem.bytes_index;
    stats.bytes_tuples = mem.bytes_tuples;
    Chase {
        instance,
        round_of,
        rounds,
        outcome,
        derivations,
        all_derivations: vec![Vec::new(); len],
        stats,
        round_snapshots,
    }
}

/// Certified frontier exchange for cross-shard theories: chase Gaifman
/// shards independently, absorb each shard's derived facts into the base
/// only after its [`ChaseCertBundle`] replays through the injected
/// verifier, then run one global chase over the enriched base. Sound
/// unconditionally (unverified bundles are dropped, verified facts are
/// in `Ch(T, shard base) ⊆ Ch(T, base)`); complete — set-equal to the
/// unsharded chase — whenever the chase terminates within budget, by
/// Observation 8.
#[allow(clippy::too_many_arguments)]
fn chase_exchange(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
    verify: &FrontierVerify<'_>,
    bins_max: usize,
    t0: Instant,
    mut stats: ShardStats,
) -> (Chase, ShardStats) {
    let (unit_of_fact, units) = gaifman_units(db);
    stats.components = units.saturating_sub(1);
    let mut size = vec![0usize; units];
    for &u in &unit_of_fact {
        size[u] += 1;
    }
    if size.iter().filter(|&&s| s > 0).count() <= 1 {
        stats.partition_wall = t0.elapsed();
        return (chase_with(theory, db, budget, exec), stats);
    }
    let (bin_of_unit, bins) = pack(&size, bins_max);
    stats.mode = ShardMode::Exchange;
    stats.shards = bins;
    let shard_of: Vec<usize> = unit_of_fact.iter().map(|&u| bin_of_unit[u]).collect();
    let parts = db.split_by(&shard_of, bins);
    stats.partition_wall = t0.elapsed();

    let t1 = Instant::now();
    let shard_chases: Vec<Chase> = exec.map_weighted(
        &parts,
        |p| p.len() as u64,
        |p| chase_with(theory, p, budget, &Executor::sequential()),
    );
    stats.shard_wall = t1.elapsed();

    let t2 = Instant::now();
    let kernel_before = qr_hom::global_kernel().stats();
    let mut merged = db.clone();
    let mut absorbed = false;
    for (s, ch) in shard_chases.iter().enumerate() {
        let base = parts[s].len();
        if ch.instance.len() == base {
            continue;
        }
        let frontier: Vec<Fact> = (base..ch.instance.len())
            .map(|i| ch.instance.fact(i).to_fact())
            .collect();
        let bundle = emit_chase_certs(theory, ch);
        stats.certs_exchanged += bundle.len() as u64;
        match verify(theory, &parts[s], &frontier, &bundle) {
            Ok(n) => {
                stats.certs_checked += n as u64;
                for f in frontier {
                    merged.insert(f);
                }
                absorbed = true;
            }
            Err(rejection) => {
                // Not absorbed; the catch-up chase below re-derives
                // whatever the shard legitimately proved, so a bad
                // bundle costs time, never soundness.
                stats.certs_rejected += bundle.len() as u64;
                stats.rejections.push((s, rejection));
            }
        }
    }
    let kernel_after = qr_hom::global_kernel().stats();
    stats.kernel_searches = (kernel_after.searches - kernel_before.searches)
        + (kernel_after.core_searches - kernel_before.core_searches);
    stats.frontier_rounds = usize::from(absorbed);
    let result = chase_with(theory, &merged, budget, exec);
    stats.merge_wall = t2.elapsed();
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_theory};

    /// Field-by-field byte-identity of two chase runs (walls excluded:
    /// they are measurements, not outputs).
    fn assert_identical(a: &Chase, b: &Chase) {
        let facts_a: Vec<_> = a.instance.iter().map(|f| f.to_fact()).collect();
        let facts_b: Vec<_> = b.instance.iter().map(|f| f.to_fact()).collect();
        assert_eq!(facts_a, facts_b, "fact streams");
        assert_eq!(a.instance.domain(), b.instance.domain(), "domain order");
        assert_eq!(a.round_of, b.round_of, "rounds of facts");
        assert_eq!(a.rounds, b.rounds, "round count");
        assert_eq!(a.outcome, b.outcome, "outcome");
        assert_eq!(a.derivations, b.derivations, "provenance");
        assert_eq!(
            a.round_snapshots.len(),
            b.round_snapshots.len(),
            "snapshots"
        );
        for (sa, sb) in a.round_snapshots.iter().zip(&b.round_snapshots) {
            assert_eq!(sa.facts(), sb.facts(), "snapshot facts");
            assert_eq!(sa.terms(), sb.terms(), "snapshot terms");
        }
        assert_eq!(a.stats.rounds.len(), b.stats.rounds.len(), "stat rows");
        for (ra, rb) in a.stats.rounds.iter().zip(&b.stats.rounds) {
            assert_eq!(ra.round, rb.round);
            assert_eq!(ra.triggers, rb.triggers, "round {} triggers", ra.round);
            assert_eq!(
                ra.candidates, rb.candidates,
                "round {} candidates",
                ra.round
            );
            assert_eq!(ra.dom_sweeps, rb.dom_sweeps);
            assert_eq!(ra.dom_pruned, rb.dom_pruned);
            assert_eq!(ra.facts_added, rb.facts_added, "round {} facts", ra.round);
            assert_eq!(ra.terms_added, rb.terms_added, "round {} terms", ra.round);
        }
        assert_eq!(a.stats.peak_facts, b.stats.peak_facts);
        assert_eq!(a.stats.bytes_facts, b.stats.bytes_facts);
        assert_eq!(a.stats.bytes_index, b.stats.bytes_index);
        assert_eq!(a.stats.bytes_tuples, b.stats.bytes_tuples);
    }

    #[test]
    fn classifies_theories() {
        let term = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z). h(X) -> m(X,Y).").unwrap();
        assert!(term_safe(&term));
        assert!(pred_safe(&term));
        // Constant in the head: term-unsafe, still pred-safe.
        let with_const = parse_theory("e(X,Y) -> p(X,a).").unwrap();
        assert!(!term_safe(&with_const));
        assert!(pred_safe(&with_const));
        // Disconnected body: term-unsafe, still pred-safe.
        let cross = parse_theory("p(X), q(Y) -> r(X,Y).").unwrap();
        assert!(!term_safe(&cross));
        assert!(pred_safe(&cross));
        // dom atom: neither.
        let dom = parse_theory("e(X,Y), dom(Z) -> t(X,Z).").unwrap();
        assert!(!term_safe(&dom));
        assert!(!pred_safe(&dom));
        // No frontier (head shares no variable with the body).
        let detached = parse_theory("p(X) -> q(Y).").unwrap();
        assert!(!term_safe(&detached));
        assert!(pred_safe(&detached));
    }

    #[test]
    fn packing_is_deterministic_and_balanced() {
        let (bin_of, bins) = pack(&[10, 1, 1, 1, 1, 10, 0, 4], 2);
        assert_eq!(bins, 2);
        // Largest units split across bins; the zero unit places nothing.
        assert_ne!(bin_of[0], bin_of[5]);
        let mut load = vec![0usize; bins];
        for (u, &b) in bin_of.iter().enumerate() {
            load[b] += [10, 1, 1, 1, 1, 10, 0, 4][u];
        }
        assert_eq!(load.iter().sum::<usize>(), 28);
        assert!(load.iter().all(|&l| l >= 14 - 2 && l <= 14 + 2), "{load:?}");
        // Re-running gives the same assignment.
        assert_eq!(pack(&[10, 1, 1, 1, 1, 10, 0, 4], 2), (bin_of, bins));
    }

    #[test]
    fn gaifman_mode_is_byte_identical() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z). e(X,Y) -> n(X,W).").unwrap();
        // Three components of different sizes plus a nullary fact.
        let d = parse_instance("e(a,b). e(b,c). e(c,d). e(p,q). e(q,r). e(x,y). flag().").unwrap();
        let budget = ChaseBudget::default();
        let reference = chase_with(&t, &d, budget, &Executor::sequential());
        for threads in [2, 3, 4] {
            let exec = Executor::with_threads(threads);
            let (sharded, stats) = chase_sharded(&t, &d, budget, &exec);
            assert_eq!(stats.mode, ShardMode::Gaifman, "{threads} threads");
            assert_eq!(stats.components, 3);
            assert!(stats.shards >= 2);
            assert_identical(&sharded, &reference);
        }
    }

    #[test]
    fn pred_group_mode_is_byte_identical() {
        // Term-unsafe (constant in a head; disconnected body) but
        // pred-safe; groups: {e,p} ∪ {q,r,s} with u a singleton.
        let t = parse_theory("e(X,Y) -> p(X,a). q(X), r(Y) -> s(X,Y).").unwrap();
        let d = parse_instance("e(m,n). e(n,o). q(h). r(k). u(z).").unwrap();
        let budget = ChaseBudget::default();
        let reference = chase_with(&t, &d, budget, &Executor::sequential());
        let exec = Executor::with_threads(4);
        let (sharded, stats) = chase_sharded(&t, &d, budget, &exec);
        assert_eq!(stats.mode, ShardMode::PredGroup);
        assert_eq!(stats.components, 3, "two rule groups plus singleton u");
        assert_identical(&sharded, &reference);
    }

    #[test]
    fn single_component_bypasses() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,a).").unwrap();
        let exec = Executor::with_threads(4);
        let (sharded, stats) = chase_sharded(&t, &d, ChaseBudget::default(), &exec);
        assert_eq!(stats.mode, ShardMode::Bypass);
        assert_eq!(stats.shards, 0);
        let reference = chase_with(&t, &d, ChaseBudget::default(), &exec);
        assert_identical(&sharded, &reference);
    }

    #[test]
    fn cross_shard_theory_falls_back_by_default() {
        let t = parse_theory("e(X,Y), dom(Z) -> t(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(c,d).").unwrap();
        let exec = Executor::with_threads(4);
        let (sharded, stats) = chase_sharded(&t, &d, ChaseBudget::default(), &exec);
        assert_eq!(stats.mode, ShardMode::Fallback);
        let reference = chase_with(&t, &d, ChaseBudget::default(), &exec);
        assert_identical(&sharded, &reference);
    }

    #[test]
    fn exchange_mode_absorbs_verified_frontiers() {
        // dom forces cross-shard triggers; the exchange pre-derives the
        // shard-local t-facts and the catch-up closes the rest.
        let t = parse_theory("e(X,Y), dom(Z) -> t(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(c,d).").unwrap();
        let budget = ChaseBudget::default();
        let exec = Executor::with_threads(4);
        // Trusting verifier: accepts every bundle without replay (the
        // real qr-check verifier is exercised in the integration tests).
        let verify =
            |_: &Theory, _: &Instance, frontier: &[Fact], _: &ChaseCertBundle| Ok(frontier.len());
        let opts = ShardOpts {
            cross_shard: CrossShardPolicy::Exchange { verify: &verify },
            ..ShardOpts::default()
        };
        let (sharded, stats) = chase_sharded_opts(&t, &d, budget, &exec, &opts);
        assert_eq!(stats.mode, ShardMode::Exchange);
        assert_eq!(stats.components, 2);
        assert!(stats.certs_exchanged > 0);
        assert_eq!(stats.certs_checked, stats.certs_exchanged);
        assert_eq!(stats.certs_rejected, 0);
        assert_eq!(stats.frontier_rounds, 1);
        assert_eq!(stats.kernel_searches, 0, "replay is search-free");
        // Set-equal (never byte-identical: absorbed facts arrive early).
        let reference = chase_with(&t, &d, budget, &Executor::sequential());
        assert!(reference.terminated() && sharded.terminated());
        assert_eq!(sharded.instance, reference.instance, "same fact set");
    }

    #[test]
    fn exchange_mode_survives_rejected_bundles() {
        let t = parse_theory("e(X,Y), dom(Z) -> t(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(c,d).").unwrap();
        let exec = Executor::with_threads(4);
        // Paranoid verifier: rejects everything; the catch-up chase must
        // still produce the full model.
        let verify = |_: &Theory, _: &Instance, _: &[Fact], _: &ChaseCertBundle| {
            Err(FrontierRejection {
                cert: 0,
                detail: "rejected by test verifier".into(),
            })
        };
        let opts = ShardOpts {
            cross_shard: CrossShardPolicy::Exchange { verify: &verify },
            ..ShardOpts::default()
        };
        let (sharded, stats) = chase_sharded_opts(&t, &d, ChaseBudget::default(), &exec, &opts);
        assert_eq!(stats.certs_checked, 0);
        assert!(stats.certs_rejected > 0);
        assert_eq!(stats.frontier_rounds, 0);
        assert_eq!(stats.rejections.len(), stats.shards.min(2));
        let reference = chase_with(&t, &d, ChaseBudget::default(), &Executor::sequential());
        assert_eq!(
            sharded.instance, reference.instance,
            "soundness without absorption"
        );
    }

    #[test]
    fn budget_exhaustion_is_byte_identical() {
        // Non-terminating theory on two components; truncate by rounds.
        let t = parse_theory("p(X) -> e(X,Y). e(X,Y) -> p(Y).").unwrap();
        let d = parse_instance("p(a). p(b).").unwrap();
        let budget = ChaseBudget::rounds(5);
        let reference = chase_with(&t, &d, budget, &Executor::sequential());
        assert_eq!(reference.outcome, ChaseOutcome::Exhausted);
        let (sharded, stats) = chase_sharded(&t, &d, budget, &Executor::with_threads(2));
        assert_eq!(stats.mode, ShardMode::Gaifman);
        assert_identical(&sharded, &reference);
    }
}
