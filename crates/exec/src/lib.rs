//! `qr-exec`: a deterministic, dependency-free parallel execution
//! subsystem on `std::thread::scope`.
//!
//! The workloads of this workspace share one fan-out shape: a list of
//! independent work items whose results must be reduced **in submission
//! order** so the combined output is bit-identical to a sequential run —
//! per-rule trigger enumeration in the chase (every rule sees the same
//! immutable prefix `Ch_{i-1}`), piece-rewriting candidate generation over
//! a saturation frontier, and disjunct-vs-set containment sweeps. The
//! toolchain is offline, so rayon is out of reach; an [`Executor`] covers
//! the same ground with scoped threads only:
//!
//! * **chunked work queue** — workers claim contiguous index chunks from a
//!   shared atomic cursor, so load imbalance between items is absorbed
//!   without any per-item locking;
//! * **ordered reduction** — [`Executor::map`] returns results in item
//!   order regardless of which worker computed what, and
//!   [`Executor::reduce`] folds them in that order, so callers replay the
//!   exact sequential merge;
//! * **panic propagation** — a panic on any worker is re-raised on the
//!   caller with its original payload once all workers have stopped;
//! * **configuration** — a [`Builder`] sets the thread count explicitly;
//!   otherwise the `QR_THREADS` environment variable overrides the default
//!   of [`std::thread::available_parallelism`].
//!
//! With one thread every primitive runs inline on the caller — no threads
//! are spawned, no locks are taken — which is what makes `--threads 1`
//! byte-identical to the historical sequential engines *by construction*
//! rather than by test.

use std::collections::{HashMap, VecDeque};
use std::ops::ControlFlow;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Name of the environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "QR_THREADS";

/// Builds an [`Executor`]. Resolution order for the thread count:
/// explicit [`threads`](Builder::threads) call, then the `QR_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Builder {
    threads: Option<usize>,
}

impl Builder {
    /// Sets the worker count explicitly (clamped to at least 1). This wins
    /// over `QR_THREADS`.
    pub fn threads(mut self, n: usize) -> Builder {
        self.threads = Some(n.max(1));
        self
    }

    /// Resolves the configuration into an executor.
    pub fn build(self) -> Executor {
        let threads = self
            .threads
            .or_else(threads_from_env)
            .unwrap_or_else(default_parallelism);
        Executor { threads }
    }
}

fn threads_from_env() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => None,
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A reusable handle for running deterministic parallel jobs.
///
/// The executor holds configuration only — worker threads are scoped to
/// each call (`std::thread::scope`), so an `Executor` is `Copy`, needs no
/// shutdown, and borrows freely from the caller's stack.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// A builder for explicit configuration.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// An executor that runs everything inline on the caller thread.
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// An executor configured from the environment: `QR_THREADS` if set,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Executor {
        Executor::builder().build()
    }

    /// An executor with exactly `n` workers (clamped to at least 1).
    pub fn with_threads(n: usize) -> Executor {
        Executor::builder().threads(n).build()
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` iff this executor runs inline (one worker).
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Applies `f` to every item and returns the results **in item order**
    /// (the ordered reduction half of the determinism contract: the caller
    /// can fold the returned vector exactly as a sequential loop would).
    ///
    /// `f` must be deterministic per item for the whole job to be
    /// deterministic; it may be called from any worker, in any temporal
    /// order, but each `items[i]` is evaluated exactly once.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        self.map_indexed(items, |_, item| f(item))
    }

    /// [`map`](Executor::map) with the item index passed to the worker.
    pub fn map_indexed<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if self.is_sequential() || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.threads.min(n);
        let chunk = chunk_size(n, workers);
        let cursor = AtomicUsize::new(0);
        let slots = Mutex::new(Vec::with_capacity(n));
        run_workers(workers, || {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    local.push((i, f(i, item)));
                }
            }
            let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.extend(local);
        });
        let mut pairs = slots.into_inner().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(pairs.len(), n, "every item is computed exactly once");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// [`map`](Executor::map) with weight-aware scheduling: items are
    /// *claimed* heaviest-first (longest-processing-time order, one item
    /// per claim), which bounds the makespan of skewed workloads — e.g.
    /// chase shards whose sizes differ by orders of magnitude — without
    /// affecting the result, which is still returned **in item order**.
    /// `weight` need only be a relative estimate; ties claim in item
    /// order, so scheduling is deterministic up to thread timing and the
    /// output is deterministic, period.
    pub fn map_weighted<T: Sync, R: Send>(
        &self,
        items: &[T],
        weight: impl Fn(&T) -> u64,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if self.is_sequential() || n <= 1 {
            return items.iter().map(&f).collect();
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weight(&items[i])), i));
        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let slots = Mutex::new(Vec::with_capacity(n));
        run_workers(workers, || {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                if pos >= n {
                    break;
                }
                let i = order[pos];
                local.push((i, f(&items[i])));
            }
            let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.extend(local);
        });
        let mut pairs = slots.into_inner().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(pairs.len(), n, "every item is computed exactly once");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps all items, then folds the results into `init` **in item
    /// order** on the caller thread.
    pub fn reduce<T: Sync, R: Send, A>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
        init: A,
        mut fold: impl FnMut(A, R) -> A,
    ) -> A {
        let mut acc = init;
        for r in self.map(items, f) {
            acc = fold(acc, r);
        }
        acc
    }

    /// `true` iff `pred` holds for some item. The predicate must be pure:
    /// the *result* is deterministic (a disjunction is order-independent),
    /// though which items are inspected after a hit is not — workers stop
    /// claiming chunks once a witness is found.
    pub fn any<T: Sync>(&self, items: &[T], pred: impl Fn(&T) -> bool + Sync) -> bool {
        let n = items.len();
        if self.is_sequential() || n <= 1 {
            return items.iter().any(pred);
        }
        let workers = self.threads.min(n);
        let chunk = chunk_size(n, workers);
        let cursor = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        run_workers(workers, || {
            while !found.load(Ordering::Relaxed) {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for item in &items[start..end] {
                    if pred(item) {
                        found.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
        });
        found.into_inner()
    }

    /// `true` iff `pred` holds for every item (dual of [`any`](Self::any)).
    pub fn all<T: Sync>(&self, items: &[T], pred: impl Fn(&T) -> bool + Sync) -> bool {
        !self.any(items, |item| !pred(item))
    }

    /// Two-stage pipeline with an **ordered merge**: `work` runs on the
    /// worker pool, speculatively and out of order, while the caller thread
    /// merges each item's result in exact submission order. `merge` may
    /// submit follow-up items through its [`PipelineCtx`]; they join the
    /// back of the queue, so the merge order is the FIFO order a sequential
    /// loop would produce. Returning [`ControlFlow::Break`] stops the
    /// pipeline; results already computed for unmerged items are discarded.
    ///
    /// Determinism contract: `work` must be a pure per-item function. All
    /// *decisions* (what to keep, what to submit, when to stop) happen in
    /// `merge`, which observes items strictly in submission order — so the
    /// pipeline's observable behaviour is identical to running
    /// `work`-then-`merge` inline per item, at every thread count. The only
    /// things that vary with the schedule are wall times, surfaced as
    /// [`PipelineCtx::waited`] (how long the merge was without the current
    /// item's `work` result; with one thread this is the full work time,
    /// since work runs inline) and [`PipelineCtx::helped`] (how much of
    /// that interval was spent computing the result inline — the merge
    /// thread steals the task it is waiting on when no worker has claimed
    /// it yet, rather than sleeping through a cross-thread round trip).
    ///
    /// With `n` threads, `n - 1` workers generate while the caller merges;
    /// one thread runs everything inline.
    pub fn pipeline_ordered<T, R>(
        &self,
        seeds: Vec<T>,
        work: impl Fn(&T) -> R + Sync,
        mut merge: impl FnMut(T, R, &mut PipelineCtx<T>) -> ControlFlow<()>,
    ) where
        T: Clone + Send + Sync,
        R: Send,
    {
        if self.is_sequential() {
            let mut pending: VecDeque<T> = seeds.into();
            while let Some(item) = pending.pop_front() {
                let t0 = Instant::now();
                let result = work(&item);
                let waited = t0.elapsed();
                let mut ctx = PipelineCtx {
                    emits: Vec::new(),
                    waited,
                    helped: waited,
                };
                let flow = merge(item, result, &mut ctx);
                pending.extend(ctx.emits);
                if flow.is_break() {
                    return;
                }
            }
            return;
        }

        let shared = PipelineShared::<T, R> {
            tasks: Mutex::new(TaskState {
                queue: VecDeque::new(),
                done: false,
            }),
            task_cv: Condvar::new(),
            results: Mutex::new(HashMap::new()),
            result_cv: Condvar::new(),
            failed: AtomicBool::new(false),
        };
        // Items awaiting their merge, in submission order, paired with the
        // sequence number their speculative result is filed under.
        let mut pending: VecDeque<(usize, T)> = VecDeque::new();
        let mut next_seq = 0usize;
        {
            let mut tasks = shared.lock_tasks();
            for item in seeds {
                tasks.queue.push_back((next_seq, item.clone()));
                pending.push_back((next_seq, item));
                next_seq += 1;
            }
        }

        let workers = self.threads - 1;
        let mut first_panic = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| shared.run_worker(&work)))
                .collect();
            shared.task_cv.notify_all();

            // The merge loop must not unwind past the scope without
            // releasing the workers, or they would wait on the task queue
            // forever and the scope would never join.
            let merged = catch_unwind(AssertUnwindSafe(|| {
                'merge: while let Some((seq, item)) = pending.pop_front() {
                    let t0 = Instant::now();
                    let mut helped = Duration::ZERO;
                    let result = 'result: {
                        loop {
                            if shared.failed.load(Ordering::Acquire) {
                                break 'merge;
                            }
                            if let Some(r) = shared.lock_results().remove(&seq) {
                                break 'result r;
                            }
                            // Head-of-line steal: if no worker has claimed
                            // this item's task yet, run it inline instead of
                            // sleeping on it. On chain-shaped frontiers
                            // (every window one item) this degenerates the
                            // pipeline into the sequential inline loop
                            // rather than paying a cross-thread round trip
                            // per item; with real fan-out it only fires when
                            // every worker is busy on later speculative
                            // items, where it strictly cuts the head
                            // latency. Removal under the tasks lock means a
                            // task runs exactly once, and since `work` is
                            // pure, where it runs is unobservable.
                            let stolen = {
                                let mut tasks = shared.lock_tasks();
                                tasks
                                    .queue
                                    .iter()
                                    .position(|(s, _)| *s == seq)
                                    .and_then(|pos| tasks.queue.remove(pos))
                            };
                            if let Some((_, task)) = stolen {
                                let h0 = Instant::now();
                                let r = work(&task);
                                helped = h0.elapsed();
                                break 'result r;
                            }
                            let mut results = shared.lock_results();
                            if let Some(r) = results.remove(&seq) {
                                break 'result r;
                            }
                            drop(
                                shared
                                    .result_cv
                                    .wait(results)
                                    .unwrap_or_else(|e| e.into_inner()),
                            );
                        }
                    };
                    let mut ctx = PipelineCtx {
                        emits: Vec::new(),
                        waited: t0.elapsed(),
                        helped,
                    };
                    let flow = merge(item, result, &mut ctx);
                    if !ctx.emits.is_empty() {
                        // When the merge has nothing pending, the first
                        // emitted item is the very next one it will merge —
                        // reserve it (skip its wakeup) so the head-of-line
                        // steal below wins the race instead of paying a
                        // worker round trip per item on chain-shaped
                        // frontiers. Parked workers are only skipped for
                        // that one task; busy workers pop the queue without
                        // needing a notification, and the merge is
                        // guaranteed to reach the reserved task's steal
                        // check because it is the head of `pending`.
                        let reserve_head = pending.is_empty();
                        let mut tasks = shared.lock_tasks();
                        for (j, item) in ctx.emits.into_iter().enumerate() {
                            tasks.queue.push_back((next_seq, item.clone()));
                            pending.push_back((next_seq, item));
                            next_seq += 1;
                            if !(reserve_head && j == 0) {
                                shared.task_cv.notify_one();
                            }
                        }
                    }
                    if flow.is_break() {
                        break;
                    }
                }
            }));
            shared.lock_tasks().done = true;
            shared.task_cv.notify_all();
            if let Err(payload) = merged {
                first_panic.get_or_insert(payload);
            }
            for handle in handles {
                let joined = handle.join().unwrap_or_else(Err);
                if let Err(payload) = joined {
                    first_panic.get_or_insert(payload);
                }
            }
        });
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }
}

/// Merge-side handle of [`Executor::pipeline_ordered`]: lets the merge
/// submit follow-up work and see how long it stalled for the current
/// item's result.
pub struct PipelineCtx<T> {
    emits: Vec<T>,
    waited: Duration,
    helped: Duration,
}

impl<T> PipelineCtx<T> {
    /// Submits a follow-up item to the back of the pipeline's queue.
    pub fn submit(&mut self, item: T) {
        self.emits.push(item);
    }

    /// How long the caller thread spent between becoming ready for the
    /// current item and having its stage-one result in hand (zero when
    /// speculation fully hid the work; the whole work time when running
    /// inline on one thread). [`PipelineCtx::helped`] is the sub-interval
    /// that was inline work rather than idle blocking, so
    /// `waited - helped` is the pure stall.
    pub fn waited(&self) -> Duration {
        self.waited
    }

    /// How much of [`PipelineCtx::waited`] the caller thread spent running
    /// the item's own stage-one work inline — the whole work time on one
    /// thread, the head-of-line steal time otherwise, zero when a worker
    /// computed the result.
    pub fn helped(&self) -> Duration {
        self.helped
    }
}

struct TaskState<T> {
    queue: VecDeque<(usize, T)>,
    done: bool,
}

struct PipelineShared<T, R> {
    tasks: Mutex<TaskState<T>>,
    task_cv: Condvar,
    results: Mutex<HashMap<usize, R>>,
    result_cv: Condvar,
    failed: AtomicBool,
}

impl<T, R> PipelineShared<T, R> {
    fn lock_tasks(&self) -> std::sync::MutexGuard<'_, TaskState<T>> {
        self.tasks.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_results(&self) -> std::sync::MutexGuard<'_, HashMap<usize, R>> {
        self.results.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Worker loop: claim the oldest queued item, compute, file the result
    /// under its sequence number. On panic the payload is captured for the
    /// scope join and the merge thread is woken so it can stop waiting.
    fn run_worker(&self, work: &(impl Fn(&T) -> R + Sync)) -> std::thread::Result<()> {
        let out = catch_unwind(AssertUnwindSafe(|| loop {
            let (seq, item) = {
                let mut tasks = self.lock_tasks();
                loop {
                    if tasks.done {
                        return;
                    }
                    if let Some(t) = tasks.queue.pop_front() {
                        break t;
                    }
                    tasks = self.task_cv.wait(tasks).unwrap_or_else(|e| e.into_inner());
                }
            };
            let result = work(&item);
            self.lock_results().insert(seq, result);
            self.result_cv.notify_all();
        }));
        if out.is_err() {
            self.failed.store(true, Ordering::Release);
            self.result_cv.notify_all();
            self.task_cv.notify_all();
        }
        out
    }
}

/// Chunk size for `n` items over `workers` workers: about four claims per
/// worker, so stragglers are rebalanced without hammering the cursor.
fn chunk_size(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * 4).max(1)
}

/// Runs `job` on `workers` scoped threads and joins them all, re-raising
/// the first panic payload on the caller after every worker has stopped.
fn run_workers(workers: usize, job: impl Fn() + Sync) {
    let mut first_panic = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| catch_unwind(AssertUnwindSafe(&job))))
            .collect();
        for handle in handles {
            let joined = handle.join().unwrap_or_else(Err);
            if let Err(payload) = joined {
                first_panic.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_explicit_threads_win() {
        assert_eq!(Executor::builder().threads(3).build().threads(), 3);
        assert_eq!(Executor::builder().threads(0).build().threads(), 1);
        assert_eq!(Executor::with_threads(7).threads(), 7);
        assert!(Executor::sequential().is_sequential());
    }

    #[test]
    fn from_env_defaults_to_available_parallelism() {
        // QR_THREADS is unset in the test environment, so the default is
        // the machine's parallelism (>= 1 by construction).
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(Executor::from_env().threads(), default_parallelism());
        }
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 9] {
            let exec = Executor::with_threads(threads);
            let out = exec.map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_sees_true_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let exec = Executor::with_threads(3);
        let out = exec.map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn map_weighted_preserves_item_order() {
        let items: Vec<u64> = (0..500).map(|i| (i * 7919) % 257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 2, 4, 9] {
            let exec = Executor::with_threads(threads);
            let out = exec.map_weighted(&items, |&w| w, |&x| x * 3);
            assert_eq!(out, seq, "@{threads}");
        }
        let exec = Executor::with_threads(4);
        assert!(exec.map_weighted(&[] as &[u8], |_| 0, |_| 0u8).is_empty());
        assert_eq!(exec.map_weighted(&[41u8], |_| 9, |&x| x + 1), vec![42]);
    }

    #[test]
    fn map_weighted_computes_each_item_once() {
        let items: Vec<u64> = (0..97).collect();
        let counter = AtomicUsize::new(0);
        let exec = Executor::with_threads(3);
        let out = exec.map_weighted(
            &items,
            |&w| w,
            |&x| {
                counter.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert_eq!(counter.into_inner(), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let exec = Executor::with_threads(4);
        assert!(exec.map(&[] as &[u8], |_| 0u8).is_empty());
        assert_eq!(exec.map(&[41u8], |&x| x + 1), vec![42]);
    }

    #[test]
    fn reduce_folds_in_submission_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 4] {
            let exec = Executor::with_threads(threads);
            let out = exec.reduce(
                &items,
                |&x| x.to_string(),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc.push(',');
                    acc
                },
            );
            let expected: String = items.iter().map(|x| format!("{x},")).collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn any_and_all_are_exact() {
        let items: Vec<usize> = (0..10_000).collect();
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            assert!(exec.any(&items, |&x| x == 9_999));
            assert!(!exec.any(&items, |&x| x > 9_999));
            assert!(exec.all(&items, |&x| x < 10_000));
            assert!(!exec.all(&items, |&x| x != 5_000));
            assert!(!exec.any(&[] as &[usize], |_| true));
            assert!(exec.all(&[] as &[usize], |_| false));
        }
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let items: Vec<usize> = (0..64).collect();
        let exec = Executor::with_threads(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.map(&items, |&x| {
                if x == 33 {
                    panic!("boom at {x}");
                }
                x
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 33"), "original payload kept: {msg}");
    }

    #[test]
    fn uneven_work_is_rebalanced() {
        // Heavy items at the front; ordered output must be unaffected.
        let items: Vec<u64> = (0..200).map(|i| if i < 4 { 200_000 } else { 10 }).collect();
        let spin = |n: u64| -> u64 { (0..n).fold(0, |a, b| a ^ b.wrapping_mul(31)) };
        let exec = Executor::with_threads(4);
        let par = exec.map(&items, |&n| spin(n));
        let seq: Vec<u64> = items.iter().map(|&n| spin(n)).collect();
        assert_eq!(par, seq);
    }

    /// Runs a little breadth-first expansion over the pipeline: each value
    /// below `limit` emits two children; the merge records visit order.
    fn pipeline_bfs(exec: &Executor, limit: u64) -> Vec<u64> {
        let mut order = Vec::new();
        exec.pipeline_ordered(
            vec![1u64],
            |&x| x * 2,
            |item, doubled, ctx| {
                order.push(item);
                if doubled < limit {
                    ctx.submit(doubled);
                    ctx.submit(doubled + 1);
                }
                ControlFlow::Continue(())
            },
        );
        order
    }

    #[test]
    fn pipeline_merges_in_submission_order_at_every_thread_count() {
        let seq = pipeline_bfs(&Executor::sequential(), 64);
        assert_eq!(&seq[..3], &[1, 2, 3]);
        assert!(seq.len() > 20);
        for threads in [2, 4, 9] {
            assert_eq!(
                pipeline_bfs(&Executor::with_threads(threads), 64),
                seq,
                "@{threads}"
            );
        }
    }

    #[test]
    fn pipeline_break_stops_and_discards_speculation() {
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            let mut merged = Vec::new();
            exec.pipeline_ordered(
                (0..100u32).collect(),
                |&x| x + 1,
                |item, r, _ctx| {
                    assert_eq!(r, item + 1);
                    merged.push(item);
                    if item == 9 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(merged, (0..10).collect::<Vec<_>>(), "@{threads}");
        }
    }

    #[test]
    fn pipeline_handles_empty_seeds() {
        for threads in [1, 3] {
            Executor::with_threads(threads).pipeline_ordered(
                Vec::<u8>::new(),
                |_| unreachable!("no items"),
                |_, _: (), _| unreachable!("no items"),
            );
        }
    }

    #[test]
    fn pipeline_worker_panic_propagates() {
        for threads in [1, 4] {
            let exec = Executor::with_threads(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                exec.pipeline_ordered(
                    (0..64u32).collect(),
                    |&x| {
                        if x == 33 {
                            panic!("pipeline boom at {x}");
                        }
                        x
                    },
                    |_, _, _| ControlFlow::Continue(()),
                );
            }));
            let payload = caught.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("pipeline boom at 33"), "@{threads}: {msg}");
        }
    }

    #[test]
    fn pipeline_merge_panic_releases_workers() {
        let exec = Executor::with_threads(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.pipeline_ordered(
                (0..64u32).collect(),
                |&x| x,
                |item, _, _| {
                    if item == 5 {
                        panic!("merge boom");
                    }
                    ControlFlow::Continue(())
                },
            );
        }));
        assert!(caught.is_err(), "merge panic must propagate");
    }

    #[test]
    fn pipeline_waited_is_work_time_when_sequential() {
        let exec = Executor::sequential();
        exec.pipeline_ordered(
            vec![0u8],
            |_| std::thread::sleep(Duration::from_millis(5)),
            |_, _, ctx| {
                assert!(ctx.waited() >= Duration::from_millis(5));
                // Inline work is all help, no idle stall.
                assert_eq!(ctx.helped(), ctx.waited());
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn pipeline_helped_never_exceeds_waited() {
        // Whether a worker computes an item or the merge steals it is a
        // schedule race; what must hold on every schedule is that the
        // inline-help interval is within the overall wait interval and
        // that a steal never duplicates or reorders work.
        for threads in [2, 4] {
            let exec = Executor::with_threads(threads);
            let mut merged = Vec::new();
            exec.pipeline_ordered(
                vec![0u32],
                |&x| {
                    std::thread::sleep(Duration::from_millis(1));
                    x + 1
                },
                |item, r, ctx| {
                    assert_eq!(r, item + 1);
                    assert!(ctx.helped() <= ctx.waited(), "@{threads}");
                    merged.push(item);
                    if item < 16 {
                        ctx.submit(item + 1);
                    }
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(merged, (0..17).collect::<Vec<_>>(), "@{threads}");
        }
    }

    #[test]
    fn chunking_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..4097).collect();
        let counter = AtomicUsize::new(0);
        let exec = Executor::with_threads(8);
        let out = exec.map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.into_inner(), items.len());
        assert_eq!(out, items);
    }
}
