//! Cache hits are invisible: an isomorphic variant of an already-served
//! query must answer byte-identically to (a) the base query's cold answers
//! and (b) a fresh engine's cold run of the variant — at 1, 2 and 4 worker
//! threads. An α-renamed variant (same atom order) is *guaranteed* to land
//! on the same freeze key, so it must be a cache hit; an atom-permuted
//! variant may or may not collapse under the kernel's two-round
//! canonicalization, but its answers must be identical either way. A final
//! cross-check ties the served answers back to Theorem 1: for complete
//! rewritings they equal the constant-only certain answers read off a
//! chase prefix.

use qr_chase::{chase, ChaseBudget};
use qr_hom::all_answers;
use qr_serve::{CqRequest, Engine, EngineConfig, Response, ResponseStatus, Tier};
use qr_syntax::{parse_instance, parse_query, parse_theory};
use qr_testkit::{check, Rng};

const THEORY: &str = "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).";
const DATA: &str = "mother(ann,bob). mother(bob,carol). human(dave).";
const CONSTS: [&str; 4] = ["ann", "bob", "carol", "dave"];

fn family_engine(threads: usize) -> Engine {
    let mut e = Engine::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    });
    e.register("family", THEORY, DATA).unwrap();
    e
}

/// A term slot in a generated atom: variable index or constant index.
#[derive(Clone, Copy)]
enum Slot {
    V(usize),
    C(usize),
}

/// A random CQ over the family signature, as structure (not text), so the
/// same query can be rendered under different variable names and atom
/// orders. Returns `(atoms, answer_vars)`.
fn random_query(rng: &mut Rng) -> (Vec<(&'static str, Vec<Slot>)>, Vec<usize>) {
    let natoms = rng.range(1, 4);
    let nvars = rng.range(1, 5);
    let mut atoms = Vec::new();
    for _ in 0..natoms {
        let slot = |rng: &mut Rng| {
            if rng.below(4) == 0 {
                Slot::C(rng.below(CONSTS.len()))
            } else {
                Slot::V(rng.below(nvars))
            }
        };
        if rng.bool() {
            atoms.push(("mother", vec![slot(rng), slot(rng)]));
        } else {
            atoms.push(("human", vec![slot(rng)]));
        }
    }
    let mut used = Vec::new();
    for (_, args) in &atoms {
        for s in args {
            if let Slot::V(v) = s {
                if !used.contains(v) {
                    used.push(*v);
                }
            }
        }
    }
    let mut answers = Vec::new();
    if !used.is_empty() && rng.bool() {
        answers.push(*rng.pick(&used));
    }
    (atoms, answers)
}

/// Renders the structured query with variable `v` named `names(v)` and
/// atoms emitted in `order`. Answer positions are untouched, so any two
/// renderings are isomorphic in the freeze-key sense.
fn render(
    atoms: &[(&'static str, Vec<Slot>)],
    answers: &[usize],
    names: &dyn Fn(usize) -> String,
    order: &[usize],
) -> String {
    let term = |s: &Slot| match s {
        Slot::V(v) => names(*v),
        Slot::C(c) => CONSTS[*c].to_owned(),
    };
    let head = if answers.is_empty() {
        "?".to_owned()
    } else {
        let vars: Vec<String> = answers.iter().map(|v| names(*v)).collect();
        format!("?({})", vars.join(","))
    };
    let body: Vec<String> = order
        .iter()
        .map(|&i| {
            let (pred, args) = &atoms[i];
            let rendered: Vec<String> = args.iter().map(term).collect();
            format!("{pred}({})", rendered.join(","))
        })
        .collect();
    format!("{head} :- {}.", body.join(", "))
}

fn req(query: &str) -> CqRequest {
    CqRequest {
        theory: "family".to_owned(),
        query: query.to_owned(),
    }
}

/// Unpacks an answered response; panics on rejection.
fn answered(r: &Response) -> (Tier, bool, Vec<Vec<String>>) {
    match &r.status {
        ResponseStatus::Answered {
            tier,
            complete,
            answers,
            ..
        } => (*tier, *complete, answers.clone()),
        ResponseStatus::Rejected { reason } => panic!("rejected: {reason}"),
        ResponseStatus::Written { .. } => panic!("write response to a query"),
    }
}

#[test]
fn cache_hits_answer_byte_identically_to_cold_runs() {
    check("serve-cache-equivalence", 32, |rng| {
        let (atoms, answers) = random_query(rng);
        let identity: Vec<usize> = (0..atoms.len()).collect();
        let base = render(&atoms, &answers, &|v| format!("X{v}"), &identity);

        // α-renamed variant: same atom order, fresh variable names. The
        // parser numbers variables by first occurrence, so this parses to
        // the same structure and *must* share the base's freeze key.
        let offset = rng.range(1, 9);
        let renamed = render(
            &atoms,
            &answers,
            &|v| format!("Ren{}", v * 13 + offset),
            &identity,
        );

        // Atom-permuted variant: may or may not collapse to the base's
        // key (the two-round canonicalization is a heuristic for
        // same-predicate symmetries) — but answers must match regardless.
        let shift = rng.below(atoms.len());
        let rotated: Vec<usize> = (0..atoms.len())
            .map(|i| (i + shift) % atoms.len())
            .collect();
        let permuted = render(&atoms, &answers, &|v| format!("P{v}"), &rotated);

        let mut cold_base = None;
        for threads in [1usize, 2, 4] {
            // Warm path: base cold, then the renamed variant must hit the
            // cache and answer identically; the permuted variant must
            // answer identically whichever tier serves it.
            let mut warm = family_engine(threads);
            let rs = warm.run(vec![req(&base), req(&renamed), req(&permuted)]);
            let (t0, complete, base_answers) = answered(&rs[0]);
            let (t1, _, renamed_answers) = answered(&rs[1]);
            let (_, _, permuted_answers) = answered(&rs[2]);
            assert_eq!(t0, Tier::Miss, "first sighting of {base}");
            assert_eq!(t1, Tier::Hit, "{renamed} is an α-renaming of {base}");
            assert_eq!(
                renamed_answers, base_answers,
                "hit answers diverge for {renamed} vs {base}"
            );
            assert_eq!(
                permuted_answers, base_answers,
                "permuted answers diverge for {permuted} vs {base}"
            );

            // Cold path: a fresh engine rewriting the renamed variant from
            // scratch lands on the same answers.
            let mut fresh = family_engine(threads);
            let (t2, _, fresh_answers) = answered(&fresh.submit(req(&renamed)));
            assert_eq!(t2, Tier::Miss);
            assert_eq!(
                fresh_answers, base_answers,
                "cold variant answers diverge for {renamed}"
            );

            match &cold_base {
                None => cold_base = Some((complete, base_answers)),
                Some(prev) => assert_eq!(
                    prev,
                    &(complete, base_answers),
                    "answers drift across thread counts for {base}"
                ),
            }
        }

        // Theorem 1 cross-check: a complete rewriting's answers over D are
        // exactly the constant-only answers over a (deep enough) chase
        // prefix of (T, D).
        let (complete, served) = cold_base.expect("three thread widths ran");
        if complete {
            let theory = parse_theory(THEORY).unwrap();
            let db = parse_instance(DATA).unwrap();
            let ch = chase(&theory, &db, ChaseBudget::rounds(8));
            let q = parse_query(&base).unwrap();
            let mut expect: Vec<Vec<String>> = all_answers(&q, &ch.instance, 0)
                .into_iter()
                .filter(|tuple| tuple.iter().all(|t| t.is_const()))
                .map(|tuple| tuple.iter().map(|t| t.to_string()).collect())
                .collect();
            expect.sort();
            let mut got = served.clone();
            got.sort();
            assert_eq!(
                got, expect,
                "served answers disagree with chase certain answers for {base}"
            );
        }
    });
}
