//! Conjunctive-query containment via the homomorphism theorem.
//!
//! Following the paper (Section 2): `φ(ȳ)` **contains** `ψ(ȳ)` iff for
//! every structure `D` and tuple `ā`, `D ⊨ φ(ā)` implies `D ⊨ ψ(ā)`.
//! By the Chandra–Merlin theorem this holds iff there is a homomorphism
//! from `ψ(ȳ)` into `φ(ȳ)` (queries viewed as structures over their
//! variables) that is the identity on the answer variables `ȳ`.

use qr_exec::Executor;
use qr_syntax::query::ConjunctiveQuery;

use crate::kernel::global_kernel;

/// `true` iff `phi` contains `psi` in the paper's sense: every answer of
/// `phi` is an answer of `psi` (so `phi` is the logically *stronger* query).
/// Witnessed by a homomorphism from `psi` into `phi` fixing the answer
/// variables positionally.
///
/// Delegates to the process-wide [`crate::kernel::HomKernel`], so repeated
/// checks against the same queries reuse the frozen instance, the compiled
/// component plans, and the prefilters.
pub fn contains(phi: &ConjunctiveQuery, psi: &ConjunctiveQuery) -> bool {
    global_kernel().contains_queries(phi, psi)
}

/// `true` iff the two queries are equivalent (mutual containment).
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    contains(a, b) && contains(b, a)
}

/// Parallel disjunct-vs-set sweep: `true` iff some query in `kept`
/// [`contains`]-subsumes `cand` — i.e. `contains(cand, r)` holds for some
/// `r`, so `cand` adds no answers to the union `kept` already describes.
///
/// The sweep runs on `exec`'s worker pool; each containment check is a
/// pure predicate, so the early-exiting parallel `any` returns exactly
/// what the sequential scan would. The rewrite engine uses this to test
/// candidates against the accumulated rewriting set.
pub fn subsumed_by_any(
    exec: &Executor,
    cand: &ConjunctiveQuery,
    kept: &[&ConjunctiveQuery],
) -> bool {
    let k = global_kernel();
    let cand_entry = k.entry(cand);
    let entries: Vec<_> = kept.iter().map(|r| k.entry(r)).collect();
    let refs: Vec<_> = entries.iter().collect();
    k.subsumed_by_any(exec, &cand_entry, &refs)
}

/// Parallel disjunct-vs-set sweep: one flag per query in `kept`, `true`
/// iff `contains(r, cand)` — i.e. `r` is subsumed by `cand` and can be
/// evicted from a union that now includes `cand`. Flags come back in
/// `kept` order (ordered reduction), so callers retain/evict exactly as a
/// sequential scan would.
pub fn covered_by(
    exec: &Executor,
    kept: &[&ConjunctiveQuery],
    cand: &ConjunctiveQuery,
) -> Vec<bool> {
    let k = global_kernel();
    let cand_entry = k.entry(cand);
    let entries: Vec<_> = kept.iter().map(|r| k.entry(r)).collect();
    let refs: Vec<_> = entries.iter().collect();
    k.covered_by(exec, &refs, &cand_entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parser::parse_query;

    #[test]
    fn longer_path_is_contained_in_shorter() {
        // Any D satisfying a 2-path from X also satisfies a 1-path from X.
        let p2 = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        let p1 = parse_query("?(X) :- e(X,Y).").unwrap();
        assert!(contains(&p2, &p1));
        assert!(!contains(&p1, &p2));
    }

    #[test]
    fn equivalence_up_to_redundancy() {
        let q1 = parse_query("?(X) :- e(X,Y).").unwrap();
        let q2 = parse_query("?(X) :- e(X,Y), e(X,Z).").unwrap();
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn boolean_cycle_vs_path() {
        // Any D with a 2-cycle has an edge; the converse fails.
        let cycle = parse_query("? :- e(X,Y), e(Y,X).").unwrap();
        let path = parse_query("? :- e(X,Y).").unwrap();
        assert!(contains(&cycle, &path));
        assert!(!contains(&path, &cycle));
    }

    #[test]
    fn constants_matter() {
        let qa = parse_query("? :- p(a).").unwrap();
        let qx = parse_query("? :- p(X).").unwrap();
        assert!(contains(&qa, &qx)); // p(a) implies ∃x p(x)
        assert!(!contains(&qx, &qa)); // ∃x p(x) does not imply p(a)
    }

    #[test]
    fn answer_variables_are_rigid() {
        let q1 = parse_query("?(X,Y) :- e(X,Y).").unwrap();
        let q2 = parse_query("?(X,Y) :- e(Y,X).").unwrap();
        assert!(!contains(&q1, &q2));
        assert!(!contains(&q2, &q1));
    }

    #[test]
    fn containment_is_reflexive_and_transitive() {
        let p1 = parse_query("?(X) :- e(X,Y).").unwrap();
        let p2 = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        let p3 = parse_query("?(X) :- e(X,Y), e(Y,Z), e(Z,W).").unwrap();
        assert!(contains(&p1, &p1));
        assert!(contains(&p3, &p2) && contains(&p2, &p1) && contains(&p3, &p1));
    }
}
