//! Soundness of single piece-rewriting steps, checked against the chase:
//! whenever a rewritten query holds in `D`, the original query holds in
//! `Ch(T, D)` — for randomized instances and a mix of theories.

use qr_chase::{chase, ChaseBudget};
use qr_hom::holds;
use qr_rewrite::unify::piece_rewritings;
use qr_syntax::{parse_instance, parse_query, parse_theory, Instance};
use qr_testkit::{check, Rng};

fn edge_instance(rng: &mut Rng) -> Instance {
    let n = rng.range(1, 7);
    let mut src = String::new();
    for _ in 0..n {
        let a = rng.below(4);
        let b = rng.below(4);
        if rng.bool() {
            src.push_str(&format!("e(u{a}, u{b}).\n"));
        } else {
            src.push_str(&format!("p(u{a}).\n"));
        }
    }
    parse_instance(&src).unwrap()
}

#[test]
fn one_step_soundness() {
    let theories = [
        "e(X,Y) -> e(Y,Z).",
        "p(X) -> e(X,Y).\ne(X,Y) -> p(Y).",
        "p(X), e(X,Y) -> e(Y,W).",
    ];
    let queries = [
        "? :- e(A,B), e(B,C).",
        "? :- e(A,B), p(B).",
        "? :- e(A,A).",
        "? :- p(A), e(A,B), e(B,C).",
    ];
    check("one_step_soundness", 48, |rng| {
        let db = edge_instance(rng);
        let theory = parse_theory(rng.pick::<&str>(&theories)).unwrap();
        let query = parse_query(rng.pick::<&str>(&queries)).unwrap();
        let ch = chase(
            &theory,
            &db,
            ChaseBudget {
                max_rounds: 6,
                max_facts: 50_000,
            },
        );
        for rule in theory.rules() {
            for pu in piece_rewritings(&query, rule) {
                if holds(&pu.result, &db, &[]) {
                    assert!(
                        holds(&query, &ch.instance, &[]),
                        "unsound step: {} became {} on {}",
                        query.render(),
                        pu.result.render(),
                        db
                    );
                }
            }
        }
    });
}

#[test]
fn two_step_soundness_family_theory() {
    // Iterate rewriting twice by hand and check each level against the
    // chase on a concrete instance.
    let theory = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
    let query = parse_query("? :- mother(A,B), mother(B,C).").unwrap();
    let db = parse_instance("human(abel).").unwrap();
    let ch = chase(&theory, &db, ChaseBudget::rounds(6));
    assert!(holds(&query, &ch.instance, &[]));
    let mut frontier = vec![query.clone()];
    for _level in 0..3 {
        let mut next = Vec::new();
        for q in &frontier {
            for rule in theory.rules() {
                for pu in piece_rewritings(q, rule) {
                    if holds(&pu.result, &db, &[]) {
                        assert!(holds(&query, &ch.instance, &[]));
                    }
                    next.push(pu.result);
                }
            }
        }
        frontier = next;
        assert!(!frontier.is_empty());
    }
    // The fully rewritten query human(A) must be among the level-3 results
    // (mother-pair -> mother+human -> mother-fork -> human) up to
    // equivalence.
    let target = parse_query("? :- human(A).").unwrap();
    assert!(frontier
        .iter()
        .any(|q| qr_hom::containment::equivalent(q, &target)));
}
