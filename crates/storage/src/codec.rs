//! Minimal std-only byte codec for versioned checkpoint formats.
//!
//! Unsigned integers are LEB128 varints; strings are length-prefixed
//! UTF-8. `qr-syntax` builds the instance checkpoint format on top of
//! this (magic + version header, predicate/term tables, fact stream),
//! and `qr-check` builds the certificate bundle formats the same way.
//!
//! Decode failures are structured: every [`DecodeError`] carries the
//! byte offset at which the offending value *starts* plus a
//! [`DecodeErrorKind`], so callers can point at the exact corrupt spot
//! instead of re-parsing an opaque message.

use std::fmt;

/// What went wrong while decoding a byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The stream ended before a complete value was read.
    UnexpectedEof,
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream's format version is newer than this build understands.
    UnsupportedVersion(u64),
    /// A structurally invalid value (out-of-range id, bad UTF-8, ...).
    Malformed(&'static str),
}

/// Error decoding a checkpoint byte stream: a [`DecodeErrorKind`]
/// located at the byte offset where the offending value starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset (into the decoded slice) of the value that failed.
    pub offset: usize,
    /// What went wrong there.
    pub kind: DecodeErrorKind,
}

impl DecodeError {
    /// An error of `kind` located at byte `offset`.
    pub fn at(offset: usize, kind: DecodeErrorKind) -> DecodeError {
        DecodeError { offset, kind }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DecodeErrorKind::UnexpectedEof => {
                write!(f, "unexpected end of stream at byte {}", self.offset)
            }
            DecodeErrorKind::BadMagic => write!(f, "bad magic at byte {}", self.offset),
            DecodeErrorKind::UnsupportedVersion(v) => {
                write!(f, "unsupported version {v} at byte {}", self.offset)
            }
            DecodeErrorKind::Malformed(what) => {
                write!(f, "malformed stream at byte {}: {what}", self.offset)
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends an unsigned integer as a LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded byte stream.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the full slice.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// The current byte offset — where the next read will start.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// `true` iff every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// A [`DecodeError`] of `kind` located at the current offset.
    pub fn error(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError::at(self.pos, kind)
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(self.error(DecodeErrorKind::UnexpectedEof));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or(DecodeError::at(start, DecodeErrorKind::UnexpectedEof))?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(DecodeError::at(
                    start,
                    DecodeErrorKind::Malformed("varint overflows u64"),
                ));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let start = self.pos;
        let len = self.varint()? as usize;
        let bytes = self.raw(len).map_err(|e| {
            // Locate a short string at its length prefix, not past it.
            DecodeError::at(start, e.kind)
        })?;
        std::str::from_utf8(bytes)
            .map_err(|_| DecodeError::at(start, DecodeErrorKind::Malformed("invalid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.varint(v);
        }
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint(), Ok(v));
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn strings_and_raw_roundtrip() {
        let mut w = ByteWriter::new();
        w.raw(b"QRCK");
        w.str("mother");
        w.str("");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.raw(4), Ok(&b"QRCK"[..]));
        assert_eq!(r.pos(), 4);
        assert_eq!(r.str(), Ok("mother"));
        assert_eq!(r.str(), Ok(""));
        assert!(r.is_at_end());
    }

    #[test]
    fn truncated_stream_errors_carry_the_offset() {
        let mut w = ByteWriter::new();
        w.str("hello");
        let bytes = w.into_vec();
        // The string starts at offset 0; truncating its payload still
        // locates the error at the value start.
        let mut r = ByteReader::new(&bytes[..3]);
        assert_eq!(
            r.str(),
            Err(DecodeError::at(0, DecodeErrorKind::UnexpectedEof))
        );
        assert_eq!(
            ByteReader::new(&[0x80]).varint(),
            Err(DecodeError::at(0, DecodeErrorKind::UnexpectedEof))
        );
        // A failing read after a successful one is located past it.
        let mut w = ByteWriter::new();
        w.varint(7);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        r.varint().unwrap();
        assert_eq!(
            r.varint(),
            Err(DecodeError::at(1, DecodeErrorKind::UnexpectedEof))
        );
    }

    #[test]
    fn overlong_varint_is_malformed() {
        // 11 continuation bytes cannot fit in a u64.
        let bytes = [
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ];
        assert_eq!(
            ByteReader::new(&bytes).varint(),
            Err(DecodeError::at(
                0,
                DecodeErrorKind::Malformed("varint overflows u64")
            ))
        );
    }

    #[test]
    fn bad_utf8_is_malformed_at_the_string_start() {
        let mut w = ByteWriter::new();
        w.varint(1);
        w.raw(&[0xff]);
        let bytes = w.into_vec();
        assert_eq!(
            ByteReader::new(&bytes).str(),
            Err(DecodeError::at(
                0,
                DecodeErrorKind::Malformed("invalid UTF-8")
            ))
        );
    }

    #[test]
    fn display_names_offset_and_kind() {
        let e = DecodeError::at(12, DecodeErrorKind::UnsupportedVersion(9));
        assert_eq!(e.to_string(), "unsupported version 9 at byte 12");
        let e = DecodeError::at(0, DecodeErrorKind::BadMagic);
        assert_eq!(e.to_string(), "bad magic at byte 0");
        let e = DecodeError::at(3, DecodeErrorKind::Malformed("trailing bytes"));
        assert_eq!(e.to_string(), "malformed stream at byte 3: trailing bytes");
        let e = DecodeError::at(5, DecodeErrorKind::UnexpectedEof);
        assert_eq!(e.to_string(), "unexpected end of stream at byte 5");
    }
}
