//! Chase certificates: replayable per-fact derivation witnesses.
//!
//! A chase run already records, per derived fact, its first
//! [`crate::engine::Derivation`] — the rule and the exact trigger the
//! match trail produced. [`emit_chase_certs`] converts that provenance
//! into a [`ChaseCertBundle`] that an *independent* checker (`qr-check`)
//! can replay in linear time: re-unify each regular body atom with its
//! recorded trigger fact (zero search), resolve `dom` atoms through
//! recorded occurrence witnesses, re-apply the Skolemized head with
//! [`crate::skolem::SkolemizedRule::apply_with_frontier`], and compare
//! the produced fact literally.
//!
//! Well-foundedness is by fact-index ordering: every trigger index and
//! every `dom` witness index is strictly below the certified fact's
//! index, so a bundle that replays proves each derived fact is contained
//! in `Ch_∞(T, base)` — no trust in the engine's search is needed.
//! Emission is post-hoc (a sweep over [`crate::engine::Chase`]): the
//! chase loop itself is untouched, so certified and uncertified runs are
//! byte-identical in facts, rounds, and every drift-gated counter.

use std::collections::HashMap;

use qr_syntax::{Instance, QTerm, TermId, Theory, Var};

use crate::engine::Chase;
use crate::skolem::SkolemizedRule;

/// The replay witness of one derived fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaseCert {
    /// Index of the certified fact in the chase instance. Always ≥ the
    /// bundle's `base`; certs are emitted in ascending fact order.
    pub fact: u32,
    /// Index of the fired rule in the theory.
    pub rule: u32,
    /// One trigger fact index per **regular** (non-`dom`) body atom, in
    /// body-atom order; each strictly less than `fact`.
    pub trigger: Vec<u32>,
    /// One `(witness fact, argument position)` per **`dom`** body atom,
    /// in body-atom order: an occurrence of the atom's term in a fact
    /// strictly below `fact`, witnessing domain membership.
    pub dom: Vec<(u32, u32)>,
}

/// Certificates for every derived fact of one chase run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaseCertBundle {
    /// Number of input facts (fact indices `0..base` are the database and
    /// need no certificate).
    pub base: u32,
    /// One certificate per derived fact, in ascending fact order:
    /// `certs[i].fact == base + i`.
    pub certs: Vec<ChaseCert>,
}

impl ChaseCertBundle {
    /// Number of certificates (= derived facts covered).
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// `true` iff the run derived nothing beyond the input.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }
}

/// A `(fact index, argument position)` pointer into the fact stream.
type Occurrence = (u32, u32);

/// First occurrence `(fact, position)` of every term in the instance, in
/// fact-stream order, plus the globally first occurrence of *any* term.
/// One linear sweep; the basis for all `dom` witnesses.
fn first_occurrences(inst: &Instance) -> (HashMap<TermId, Occurrence>, Option<Occurrence>) {
    let mut first: HashMap<TermId, Occurrence> = HashMap::new();
    let mut any: Option<Occurrence> = None;
    for (i, f) in inst.iter().enumerate() {
        for (pos, &t) in f.args.iter().enumerate() {
            if any.is_none() {
                any = Some((i as u32, pos as u32));
            }
            first.entry(t).or_insert((i as u32, pos as u32));
        }
    }
    (first, any)
}

/// Emits the certificate bundle of a finished chase run.
///
/// Every derived fact's recorded [`crate::engine::Derivation`] becomes a
/// [`ChaseCert`]; `dom`-atom witnesses are resolved to first occurrences
/// (necessarily below the certified fact, since the term was in the
/// domain before the rule fired). Panics only on a malformed `Chase`
/// (missing provenance for a derived fact) — never on well-formed runs,
/// including budget-truncated ones.
pub fn emit_chase_certs(theory: &Theory, chase: &Chase) -> ChaseCertBundle {
    let inst = &chase.instance;
    let (first, first_any) = first_occurrences(inst);
    let skolemized: Vec<SkolemizedRule> = theory.rules().iter().map(SkolemizedRule::new).collect();

    let base = chase.derivations.iter().take_while(|d| d.is_none()).count();
    debug_assert!(
        chase.derivations[base..].iter().all(|d| d.is_some()),
        "input facts form a prefix of the fact stream"
    );

    let mut certs = Vec::with_capacity(inst.len() - base);
    for (i, d) in chase.derivations.iter().enumerate().skip(base) {
        let d = d
            .as_ref()
            .expect("derived facts carry their first derivation");
        let rule = &theory.rules()[d.rule];
        let sk = &skolemized[d.rule];

        // Bindings reachable without search: trigger facts bind every
        // regular-atom variable; the recorded frontier binds the
        // remaining (dom-only) frontier variables.
        let mut bound: HashMap<Var, TermId> = HashMap::new();
        let mut reg = 0;
        for atom in rule.body() {
            if atom.pred.is_dom() {
                continue;
            }
            let f = inst.fact(d.trigger[reg]);
            reg += 1;
            for (pos, t) in atom.args.iter().enumerate() {
                if let QTerm::Var(v) = t {
                    bound.insert(*v, f.args[pos]);
                }
            }
        }
        for (v, t) in sk.frontier.iter().zip(&d.frontier) {
            bound.insert(*v, *t);
        }

        let dom = rule
            .body()
            .iter()
            .filter(|a| a.pred.is_dom())
            .map(|a| {
                let occ = match a.args[0] {
                    QTerm::Const(c) => first.get(&TermId::constant(c)).copied(),
                    QTerm::Var(v) => match bound.get(&v) {
                        Some(t) => first.get(t).copied(),
                        // A dom-only variable outside the frontier: any
                        // domain term satisfies it, so witness the first.
                        None => first_any,
                    },
                };
                occ.expect("dom atoms only fire on terms occurring in the instance")
            })
            .collect();

        certs.push(ChaseCert {
            fact: i as u32,
            rule: d.rule as u32,
            trigger: d.trigger.iter().map(|&t| t as u32).collect(),
            dom,
        });
    }

    ChaseCertBundle {
        base: base as u32,
        certs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseBudget};
    use qr_syntax::{parse_instance, parse_theory};

    fn run(theory: &str, db: &str) -> (Theory, Chase) {
        let t = parse_theory(theory).unwrap();
        let d = parse_instance(db).unwrap();
        let c = chase(&t, &d, ChaseBudget::default());
        (t, c)
    }

    #[test]
    fn covers_every_derived_fact_in_order() {
        let (t, c) = run("e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d).");
        let b = emit_chase_certs(&t, &c);
        assert_eq!(b.base, 3);
        assert_eq!(b.len() + 3, c.instance.len());
        for (k, cert) in b.certs.iter().enumerate() {
            assert_eq!(cert.fact as usize, 3 + k);
            for &tr in &cert.trigger {
                assert!(tr < cert.fact, "triggers precede the fact");
            }
        }
    }

    #[test]
    fn dom_atoms_get_occurrence_witnesses() {
        // Frontier variable X is bound only by the dom atom.
        let (t, c) = run("dom(X) -> p(X).", "e(a,b).");
        let b = emit_chase_certs(&t, &c);
        assert!(!b.is_empty());
        for cert in &b.certs {
            assert_eq!(cert.trigger.len(), 0);
            assert_eq!(cert.dom.len(), 1);
            let (wf, wp) = cert.dom[0];
            assert!(wf < cert.fact);
            let witness = c.instance.fact(wf as usize).args[wp as usize];
            // The witnessed term is the derived fact's argument.
            assert_eq!(c.instance.fact(cert.fact as usize).args[0], witness);
        }
    }

    #[test]
    fn existential_heads_replay_through_skolem_application() {
        let (t, c) = run("human(X) -> mother(X,Y).", "human(abel).");
        let b = emit_chase_certs(&t, &c);
        assert_eq!(b.len(), 1);
        let cert = &b.certs[0];
        // Replaying the skolemized head on the recorded frontier rebuilds
        // the derived fact literally — the checker's core step.
        let rule = &t.rules()[cert.rule as usize];
        let sk = SkolemizedRule::new(rule);
        let d = c.derivations[cert.fact as usize].as_ref().unwrap();
        let facts = sk.apply_with_frontier(rule, &d.frontier, |v| {
            *sk.frontier
                .iter()
                .zip(&d.frontier)
                .find(|(u, _)| **u == v)
                .map(|(_, t)| t)
                .unwrap()
        });
        let derived = c.instance.fact(cert.fact as usize);
        assert!(facts
            .iter()
            .any(|f| f.pred == derived.pred && f.args[..] == *derived.args));
    }
}
