//! A tour of the paper's frontier: the theory `T_d` (Definition 45) that is
//! BDD yet needs exponentially large rewriting disjuncts.
//!
//! 1. chase a green path `G^{2^n}` and watch `φ_R^n` become true (Fig. 1);
//! 2. verify the minimal support is the *whole* path (Theorem 5 B);
//! 3. run the marked-query process (Sections 10–11) to compute the actual
//!    rewriting, and find the `G^{2^n}` disjunct inside it;
//! 4. inspect the ranks that prove the process terminates (Section 11).
//!
//! Run with `cargo run --release --example frontier_tour`.

use query_rewritability::chase::{chase, minimal_support, ChaseBudget};
use query_rewritability::core::marked::{rewrite_td, ColorMap, MarkedQuery};
use query_rewritability::core::ranks::qrk;
use query_rewritability::core::theories::{g_power_query, green_path, phi_r_n, t_d};
use query_rewritability::hom::containment::equivalent;
use query_rewritability::hom::holds;

fn main() {
    let theory = t_d();
    println!("T_d (Definition 45):");
    print!("{}", theory.render());

    // --- 1. the grid entailment ------------------------------------------
    let n = 2;
    let len = 1 << n; // 4
    let (db, a, b) = green_path(len, "a");
    println!("\nD = G^{len}(a0,a{len}) — a green path of {len} edges");
    let q = phi_r_n(n);
    println!("φ_R^{n} = {}   (size {})", q.render(), q.size());
    for depth in 1..=5 {
        let ch = chase(&theory, &db, ChaseBudget::rounds(depth));
        println!(
            "  Ch_{depth}: {:>5} facts   φ_R^{n}(a,b): {}",
            ch.instance.len(),
            holds(&q, &ch.instance, &[a, b])
        );
    }

    // --- 2. minimal support = the whole path ------------------------------
    let support = minimal_support(
        &theory,
        &db,
        &q,
        &[a, b],
        ChaseBudget {
            max_rounds: 5,
            max_facts: 500_000,
        },
    )
    .expect("entailed");
    println!(
        "\nminimal support of φ_R^{n}(a,b): {} of {} facts (whole path: {})",
        support.len(),
        db.len(),
        support == db
    );

    // --- 3. the marked-query process ---------------------------------------
    println!("\nmarked-query process on φ_R^n:");
    for k in 1..=4usize {
        let r = rewrite_td(&phi_r_n(k), 10_000_000).expect("terminates");
        let g = g_power_query(1 << k);
        let has_g = r.disjuncts.iter().any(|d| equivalent(d, &g));
        println!(
            "  n={k}: |φ|={:>2} → {:>4} disjuncts, max size {:>3}, steps {:>4}, G^{} present: {}",
            phi_r_n(k).size(),
            r.disjuncts.len(),
            r.max_disjunct_size(),
            r.stats.steps,
            1 << k,
            has_g
        );
    }
    println!("  (max disjunct size is exponential in n — Theorem 5; compare");
    println!("   linear theories, where rs ≤ l·|φ|, Observation 31.)");

    // --- 4. ranks -----------------------------------------------------------
    let colors = ColorMap::td();
    let seeds = MarkedQuery::markings_of(&phi_r_n(1), &colors).expect("non-Boolean");
    println!("\nranks qrk(Q) of the initial markings of φ_R^1 (Definition 54):");
    for s in &seeds {
        let rank = qrk(s, 2);
        let (reds, greens) = &rank.components()[0];
        println!(
            "  marked {:>12}  |Q_R| = {}  erk multiset = {:?}",
            format!("{:?}", s.marked()),
            reds,
            greens.items()
        );
    }
    println!("\nevery process operation strictly decreases these ranks (Lemma 53),");
    println!("which is why the process — and hence the rewriting — terminates.");
}
