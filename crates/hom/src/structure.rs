//! Homomorphisms between instances (structures), and cores of finite
//! structures relative to a fixed set of terms.
//!
//! These are the tools behind the paper's Section 5: `Core(T,D)` is found by
//! folding a chase prefix onto itself while keeping `dom(D)` pointwise
//! fixed (Definitions 19, 20, 24 and Lemma 35).

use std::collections::{HashMap, HashSet};

use qr_syntax::query::{ConjunctiveQuery, Var};
use qr_syntax::{Fact, Instance, TermId};

use crate::matcher::find_hom;

/// Finds a homomorphism `src → dst` extending the partial map `fixed`
/// (every term of `src`, including constants, is treated as a variable
/// unless constrained by `fixed`).
pub fn instance_hom(
    src: &Instance,
    dst: &Instance,
    fixed: &HashMap<TermId, TermId>,
) -> Option<HashMap<TermId, TermId>> {
    if src.is_empty() {
        return Some(fixed.clone());
    }
    // Necessary condition before building the query and searching: every
    // predicate used by `src` must occur in `dst`.
    for f in src.iter() {
        if !f.pred.is_dom() && dst.with_pred(f.pred).is_empty() {
            return None;
        }
    }
    let q = ConjunctiveQuery::of_instance(src, src.domain());
    // `of_instance` numbers the free variables in the order of `src.domain()`.
    let fixed_vars: Vec<(Var, TermId)> = src
        .domain()
        .iter()
        .enumerate()
        .filter_map(|(i, t)| fixed.get(t).map(|img| (Var(i as u32), *img)))
        .collect();
    let asg = find_hom(q.atoms(), q.var_names().len(), dst, &fixed_vars)?;
    Some(
        src.domain()
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, asg[i].expect("complete match binds all variables")))
            .collect(),
    )
}

/// Applies a term map to every fact of an instance (terms missing from the
/// map are left unchanged).
pub fn apply_term_map(inst: &Instance, map: &HashMap<TermId, TermId>) -> Instance {
    Instance::from_facts(inst.iter().map(|f| {
        Fact::new(
            f.pred,
            f.terms()
                .map(|t| *map.get(&t).unwrap_or(&t))
                .collect::<Vec<_>>(),
        )
    }))
}

/// Computes a core of `inst` relative to `frozen`: an induced substructure
/// onto which `inst` retracts by a homomorphism that is the identity on
/// `frozen`, and from which no further term can be folded away.
///
/// Returns the core together with the overall retraction.
pub fn structure_core(
    inst: &Instance,
    frozen: &HashSet<TermId>,
) -> (Instance, HashMap<TermId, TermId>) {
    let mut current = inst.clone();
    let mut retraction: HashMap<TermId, TermId> = inst.domain().iter().map(|t| (*t, *t)).collect();
    'outer: loop {
        let candidates: Vec<TermId> = current
            .domain()
            .iter()
            .copied()
            .filter(|t| !frozen.contains(t))
            .collect();
        for &victim in &candidates {
            // Try to retract onto the substructure induced by dom \ {victim}.
            let kept: HashSet<TermId> = current
                .domain()
                .iter()
                .copied()
                .filter(|t| *t != victim)
                .collect();
            let target = current.induced(&kept);
            let fixed: HashMap<TermId, TermId> = frozen.iter().map(|t| (*t, *t)).collect();
            if let Some(h) = instance_hom(&current, &target, &fixed) {
                current = apply_term_map(&current, &h);
                for img in retraction.values_mut() {
                    if let Some(next) = h.get(img) {
                        *img = *next;
                    }
                }
                continue 'outer;
            }
        }
        return (current, retraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parser::parse_instance;
    use qr_syntax::Symbol;

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn hom_folds_path_onto_loop() {
        let src = parse_instance("e(a,b). e(b,c).").unwrap();
        let dst = parse_instance("e(x,x).").unwrap();
        let h = instance_hom(&src, &dst, &HashMap::new()).unwrap();
        assert_eq!(h[&c("a")], c("x"));
        assert_eq!(h[&c("b")], c("x"));
    }

    #[test]
    fn fixed_terms_respected() {
        let src = parse_instance("e(a,b).").unwrap();
        let dst = parse_instance("e(x,x). e(a,y).").unwrap();
        let fixed: HashMap<_, _> = [(c("a"), c("a"))].into_iter().collect();
        let h = instance_hom(&src, &dst, &fixed).unwrap();
        assert_eq!(h[&c("a")], c("a"));
        assert_eq!(h[&c("b")], c("y"));
    }

    #[test]
    fn no_hom_when_pattern_missing() {
        let src = parse_instance("e(a,a).").unwrap();
        let dst = parse_instance("e(x,y).").unwrap();
        assert!(instance_hom(&src, &dst, &HashMap::new()).is_none());
    }

    #[test]
    fn core_of_path_with_loop() {
        let inst = parse_instance("e(a,b). e(b,c). e(c,c).").unwrap();
        let (core, retraction) = structure_core(&inst, &HashSet::new());
        assert_eq!(core, parse_instance("e(c,c).").unwrap());
        assert_eq!(retraction[&c("a")], c("c"));
    }

    #[test]
    fn frozen_terms_survive() {
        let inst = parse_instance("e(a,b). e(b,c). e(c,c).").unwrap();
        let frozen: HashSet<_> = [c("a")].into_iter().collect();
        let (core, _) = structure_core(&inst, &frozen);
        // `a` cannot be folded away, so e(a,·) must survive in some form.
        assert!(core.contains_term(c("a")));
        assert!(core.len() >= 2);
    }

    #[test]
    fn core_of_core_is_identity() {
        let inst = parse_instance("e(a,b). e(b,c). e(c,c).").unwrap();
        let (core, _) = structure_core(&inst, &HashSet::new());
        let (core2, _) = structure_core(&core, &HashSet::new());
        assert_eq!(core, core2);
    }
}
