//! Budget-truncated rewritings must stay *sound*: truncation may drop
//! coverage the full rewriting would have had, but it must never return a
//! disjunct that is not a genuine rewriting, and it must never lose the
//! coverage of queries it had already accepted.
//!
//! The regression test pins the historical `max_queries` truncation bug:
//! the merge broke out *after* a candidate's victims were evicted but
//! *before* the candidate was pushed, so the returned UCQ lost the
//! victims' coverage with nothing standing in for them.

use qr_chase::{chase, ChaseBudget};
use qr_exec::Executor;
use qr_hom::containment::subsumed_by_any;
use qr_hom::holds;
use qr_rewrite::{rewrite, rewrite_with_trace, RewriteBudget, RewriteOutcome};
use qr_syntax::{parse_query, parse_theory, ConjunctiveQuery, TermId};
use qr_testkit::{check, Rng};

/// Piece-rewritable theories: saturating shapes and divergent Datalog, so
/// random budgets hit `max_generated`, `max_queries` and `max_atoms`
/// truncation as well as complete runs.
const THEORIES: [&str; 6] = [
    "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
    "e(X,Y) -> e(Y,Z).",
    "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
    "e(X,Y), e(Y,Z) -> e(X,Z).",
    "p(X) -> q(X).",
    "e(X,Y,Z), r(X,Z) -> r(Y,Z).",
];

const QUERIES: [&str; 5] = [
    "? :- e(A,B), e(B,C).",
    "?(A) :- e(A,B), e(B,C).",
    "? :- e(A,B).",
    "? :- q(A), p(A).",
    "? :- r(A,B), q(A).",
];

fn pick_inputs(rng: &mut Rng) -> (qr_syntax::Theory, ConjunctiveQuery, &'static str) {
    let theory_src = *rng.pick::<&str>(&THEORIES);
    let theory = parse_theory(theory_src).unwrap();
    // Ternary-`e` theories only get the matching-arity query.
    let query_src = if theory_src.contains("e(X,Y,Z)") {
        "? :- r(A,B), q(A)."
    } else {
        rng.pick::<&str>(&QUERIES)
    };
    (theory, parse_query(query_src).unwrap(), query_src)
}

/// Regression for the `max_queries` truncation hole. With `max_queries =
/// 0` the unguarded seed push leaves the set over capacity, so the first
/// accepted candidate both evicts the seed and trips the budget check —
/// the old loop broke between the two and returned an *empty* UCQ,
/// silently losing the seed's coverage. Every query accepted before the
/// truncation point must still be covered by some returned disjunct.
#[test]
fn budget_break_mid_eviction_keeps_coverage() {
    let theory = parse_theory("p(X) -> q(X).").unwrap();
    let query = parse_query("? :- q(A), p(A).").unwrap();
    let budget = RewriteBudget {
        max_queries: 0,
        max_generated: 100,
        max_atoms: 8,
    };
    let mut accepted: Vec<ConjunctiveQuery> = Vec::new();
    let r = rewrite_with_trace(&theory, &query, budget, |_, cq| accepted.push(cq.clone())).unwrap();
    assert_eq!(r.outcome, RewriteOutcome::Budget);
    // The candidate p(A) evicts the seed q(A),p(A) and must replace it:
    // the rescue push keeps exactly one disjunct.
    assert_eq!(r.ucq.len(), 1, "victim's replacement must be kept");
    let seq = Executor::sequential();
    let disjuncts: Vec<&ConjunctiveQuery> = r.ucq.disjuncts().iter().collect();
    for pre in &accepted {
        assert!(
            subsumed_by_any(&seq, pre, &disjuncts),
            "truncation lost coverage of accepted query {}",
            pre.render()
        );
    }
}

/// The fix must not truncate runs the old engine finished: at capacity
/// with an eviction freeing a slot, saturation continues (here to the
/// complete one-disjunct rewriting) instead of stopping early.
#[test]
fn eviction_at_capacity_still_saturates() {
    let theory = parse_theory("p(X) -> q(X).").unwrap();
    let query = parse_query("? :- q(A), p(A).").unwrap();
    let r = rewrite(
        &theory,
        &query,
        RewriteBudget {
            max_queries: 1,
            max_generated: 100,
            max_atoms: 8,
        },
    )
    .unwrap();
    assert_eq!(r.outcome, RewriteOutcome::Complete);
    assert_eq!(r.ucq.len(), 1);
    assert_eq!(r.ucq.disjuncts()[0].render(), "? :- p(U0)");
}

/// Semantic soundness of every truncated run: each returned disjunct `d`
/// entails the original query via the chase — freezing `d` into an
/// instance and chasing it (depth ≥ the run's rewriting depth) must
/// satisfy the query at `d`'s answer tuple, whatever mix of budget limits
/// cut the run short.
#[test]
fn truncated_disjuncts_entail_the_query() {
    check("truncated_disjuncts_entail_the_query", 24, |rng| {
        let (theory, query, query_src) = pick_inputs(rng);
        let budget = RewriteBudget {
            max_queries: rng.range(1, 8),
            max_generated: rng.range(5, 80),
            max_atoms: rng.range(3, 8),
        };
        let r = rewrite(&theory, &query, budget).unwrap();
        for d in r.ucq.disjuncts() {
            let (frozen, map) = d.freeze();
            let ch = chase(
                &theory,
                &frozen,
                ChaseBudget {
                    max_rounds: r.depth + 2,
                    max_facts: 50_000,
                },
            );
            let tuple: Vec<TermId> = d.answer_vars().iter().map(|v| map[v]).collect();
            assert!(
                holds(&query, &ch.instance, &tuple),
                "unsound truncated disjunct {} for query {query_src} under {} (budget {budget:?})",
                d.render(),
                theory.render()
            );
        }
    });
}

/// Tight-budget runs against their untruncated reference: when the
/// default-budget run completes, its kept set covers every sound
/// rewriting, so every disjunct a truncated run kept must be subsumed by
/// the complete run's set (entailed via `qr-hom` exactly as the reference
/// disjuncts are).
#[test]
fn truncated_disjuncts_covered_by_complete_reference() {
    check(
        "truncated_disjuncts_covered_by_complete_reference",
        24,
        |rng| {
            let (theory, query, query_src) = pick_inputs(rng);
            let reference = rewrite(&theory, &query, RewriteBudget::default()).unwrap();
            if !reference.is_complete() {
                return; // divergent pick: no finite reference set exists
            }
            let refs: Vec<&ConjunctiveQuery> = reference.ucq.disjuncts().iter().collect();
            let seq = Executor::sequential();
            for _ in 0..3 {
                let budget = RewriteBudget {
                    max_queries: rng.range(1, 8),
                    max_generated: rng.range(5, 80),
                    max_atoms: rng.range(3, 8),
                };
                let truncated = rewrite(&theory, &query, budget).unwrap();
                for d in truncated.ucq.disjuncts() {
                    assert!(
                        subsumed_by_any(&seq, d, &refs),
                        "disjunct {} of the {budget:?} run is not covered by the \
                     complete rewriting of {query_src} under {}",
                        d.render(),
                        theory.render()
                    );
                }
            }
        },
    );
}
