//! Saturation: computing `rew(ψ)` by exhaustive piece rewriting with
//! containment-based subsumption (Theorem 1 of the paper).
//!
//! # Parallel saturation
//!
//! The loop runs on [`Executor::pipeline_ordered`]: the piece rewritings
//! (and their cores) of every queued query are generated speculatively on
//! the worker pool while the caller thread merges results in exact FIFO
//! order against the accumulated set. Subsumption checks, evictions,
//! budget accounting and tracing all happen at merge time, so a parallel
//! run makes the same decisions in the same order as the sequential loop;
//! dropping (uncounted) the candidates of items evicted earlier in the
//! merge reproduces the sequential aliveness check verbatim. Because the
//! FIFO queue enqueues descendants after everything already queued,
//! generation for BFS window *i+1* starts as soon as its queries are
//! accepted — overlapping with the merge of the rest of window *i* and
//! hiding merge latency — without a barrier per window. A barrier variant
//! ([`SaturationMode::Barrier`]) is kept for benchmarking; both engines
//! share one merge core, so every counter in [`RewriteStats`] is
//! identical across modes and thread counts.
//!
//! Accepted disjuncts are canonically renamed on acceptance: fresh
//! variable names minted during unification embed a global counter that
//! parallel generation advances in schedule-dependent order, so without
//! the renaming, saturation output would differ textually between thread
//! counts even though the sets are isomorphic.
//!
//! # Generation-side dedup
//!
//! On workloads like transitive closure, almost every candidate is an
//! isomorphic re-generation of one already processed (tc-wide: 99.8%
//! died to subsumption, each paying a freeze plus a homomorphism sweep).
//! The merge therefore rejects doomed candidates *before* any kernel
//! search, in three layers:
//!
//! * **Structural-key dedup** — every candidate carries its
//!   name-independent [`CanonicalKey`]; a seen-set per saturation drops
//!   re-generations at birth (`dedup_hits`). Sound because a key-equal
//!   candidate was already either kept (so it is subsumed now) or dropped
//!   in favour of something that entails it — entailment is transitive
//!   through any later evictions, so the old engine's subsumption sweep
//!   would have returned `true`; only the counter attribution moves from
//!   `subsumption_hits` to `dedup_hits`.
//! * **Piece-unifier index** — per-rule head-predicate lists plus a
//!   64-bit mask prefilter ([`TheoryIndex`]) so a queued item attempts
//!   only predicate-compatible unifications, and a per-item generation
//!   cap (`max_generated + 1 - generated-at-submission`) stops workers
//!   from enumerating candidates the budget can never consume. The cap
//!   is invisible to the merge: `generated` only grows between
//!   submission and merge, so the budget break fires at or before the
//!   capped item's last emitted candidate.
//! * **Predicate-set trie** — the kept set files entries by sorted
//!   predicate set (`PredSetTrie` in `trie.rs`); subsumption probes
//!   only subset-compatible entries, eviction only superset-compatible
//!   ones (the kernel's own pred-set prefilter condition, answered
//!   set-wide instead of per pair).
//!
//! Novel candidates sweep the kept set as their *raw* (uncored) entry —
//! subsumption and eviction booleans are invariant under equivalence, and
//! `raw ≡ core(raw)` — so the expensive core fold runs only on *accepted*
//! candidates (plus speculatively on the worker pool, gated off when the
//! trailing window's dedup+subsumption hit rate says speculation is
//! wasted). Outputs, traces, and every gated counter are unchanged.

use std::collections::{HashSet, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qr_exec::Executor;
use qr_hom::containment::contains;
use qr_hom::kernel::{canonical_key, CanonicalKey, HomKernel, HomStats, QueryEntry};
use qr_syntax::{ConjunctiveQuery, Pred, Symbol, Theory, Ucq, Var};

use crate::cert::{CertBuilder, RewriteCertBundle};
use crate::stats::{RewriteStats, WindowStats};
use crate::trie::PredSetTrie;
use crate::unify::{piece_rewritings_indexed, query_pred_mask, TheoryIndex, UnifyCounters};

/// Resource limits for the saturation loop.
#[derive(Clone, Copy, Debug)]
pub struct RewriteBudget {
    /// Maximum number of queries kept in the rewriting set.
    pub max_queries: usize,
    /// Maximum number of candidate queries generated overall.
    pub max_generated: usize,
    /// Candidates larger than this many atoms are discarded. Discards are
    /// reported in [`Rewriting::oversized_discarded`] and make the outcome
    /// [`RewriteOutcome::AtomCapped`] (not [`RewriteOutcome::Budget`]),
    /// since a run whose only losses are atom-cap discards did saturate
    /// everything under the cap.
    pub max_atoms: usize,
}

impl Default for RewriteBudget {
    fn default() -> Self {
        RewriteBudget {
            max_queries: 512,
            max_generated: 20_000,
            max_atoms: 48,
        }
    }
}

/// Whether saturation finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewriteOutcome {
    /// The rewriting set is saturated: it **is** `rew(ψ)` (finite, minimal
    /// up to the containment pruning) — a witness of BDD behaviour of the
    /// theory on this query.
    Complete,
    /// Saturated except for candidates above `max_atoms`, which were
    /// discarded without exploring their descendants: the set is complete
    /// *modulo the atom cap* — typical for divergent theories whose
    /// rewritings grow without bound, where no finite budget completes.
    AtomCapped,
    /// Budget exhausted (`max_generated` or `max_queries` hit with work
    /// still queued): the returned set is sound but possibly incomplete —
    /// divergence evidence.
    Budget,
}

/// Rejection of inputs outside the engine's fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// The theory contains a rule with an empty or `dom`-scoped body; such
    /// theories (e.g. the paper's `T_d`) are handled by the marked-query
    /// process in `qr-core`, not by generic piece rewriting.
    BuiltinBody {
        /// Rendering of the offending rule.
        rule: String,
    },
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::BuiltinBody { rule } => {
                write!(
                    f,
                    "rule with builtin body unsupported by piece rewriting: {rule}"
                )
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// The result of a rewriting run.
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The rewriting set (each disjunct core-minimized; mutually
    /// incomparable under containment).
    pub ucq: Ucq,
    /// Saturated, atom-capped, or budget-limited.
    pub outcome: RewriteOutcome,
    /// Number of candidate queries generated.
    pub generated: usize,
    /// Candidates discarded for exceeding `max_atoms` (reported separately
    /// from budget exhaustion so callers can tell "complete modulo the atom
    /// cap" from "ran out of budget").
    pub oversized_discarded: usize,
    /// Maximum rewriting-step depth reached.
    pub depth: usize,
    /// Per-window saturation counters and wall splits.
    pub stats: RewriteStats,
    /// Homomorphism-kernel counters for this run (the run uses a private
    /// [`HomKernel`], so the numbers describe exactly this saturation).
    /// The cache/prefilter counters (`freezes` through `components`) are
    /// deterministic across thread counts and modes; the search and core
    /// counters depend on scheduling (early-exiting parallel sweeps) and
    /// are only meaningful for sequential runs.
    pub hom: HomStats,
}

impl Rewriting {
    /// The paper's rewriting-size measure `rs_T(ψ)`: the maximal number of
    /// atoms in a disjunct.
    pub fn rs(&self) -> usize {
        self.ucq.max_disjunct_size()
    }

    /// `true` iff saturation completed.
    pub fn is_complete(&self) -> bool {
        self.outcome == RewriteOutcome::Complete
    }

    /// Theorem 1's minimality condition: no disjunct contains another
    /// (pairwise containment-incomparable). The saturation loop maintains
    /// this invariant; this re-checks it from scratch.
    pub fn is_minimal(&self) -> bool {
        let ds = self.ucq.disjuncts();
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                if i != j && contains(&ds[i], &ds[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// The accumulated rewriting set. Every kept query carries its cached
/// [`QueryEntry`] (frozen instance, compiled component plans, prefilter
/// profile), so the subsumption and eviction sweeps pay no per-check
/// setup, and is filed under its sorted predicate set in a
/// [`PredSetTrie`], so a candidate probes only pred-set-compatible
/// entries instead of prefiltering every alive pair. Entries are
/// tombstoned rather than removed so the surviving queries keep their
/// insertion order — the order the historical linear-scan implementation
/// produced; a tombstoned entry also leaves the trie, so probes never
/// surface it.
struct KeptSet {
    entries: Vec<KeptEntry>,
    alive: usize,
    trie: PredSetTrie,
}

struct KeptEntry {
    query: ConjunctiveQuery,
    entry: Arc<QueryEntry>,
    /// The entry's sorted predicate set — its path in the trie, kept for
    /// removal on eviction.
    preds: Vec<Pred>,
    /// Certificate node of this disjunct (0 when not certifying).
    node: u32,
    alive: bool,
}

impl KeptSet {
    fn new() -> KeptSet {
        KeptSet {
            entries: Vec::new(),
            alive: 0,
            trie: PredSetTrie::default(),
        }
    }

    fn len(&self) -> usize {
        self.alive
    }

    fn push(&mut self, query: ConjunctiveQuery, entry: Arc<QueryEntry>, node: u32) {
        let preds: Vec<Pred> = entry.pred_set().collect();
        self.trie.insert(&preds, self.entries.len());
        self.entries.push(KeptEntry {
            query,
            entry,
            preds,
            node,
            alive: true,
        });
        self.alive += 1;
    }

    fn contains_query(&self, q: &ConjunctiveQuery) -> bool {
        self.entries.iter().any(|e| e.alive && e.query == *q)
    }

    /// Alive slots whose predicate set is a subset of `preds`, ascending —
    /// the only entries that can subsume a candidate with that pred set.
    fn subset_slots(&self, preds: &[Pred]) -> Vec<usize> {
        let mut slots = Vec::new();
        self.trie.subsets_into(preds, &mut slots);
        slots.sort_unstable();
        slots
    }

    /// Alive slots whose predicate set is a superset of `preds`,
    /// ascending — the only entries a candidate with that pred set can
    /// evict.
    fn superset_slots(&self, preds: &[Pred]) -> Vec<usize> {
        let mut slots = Vec::new();
        self.trie.supersets_into(preds, &mut slots);
        slots.sort_unstable();
        slots
    }

    fn entry_refs(&self, slots: &[usize]) -> Vec<&Arc<QueryEntry>> {
        slots.iter().map(|&i| &self.entries[i].entry).collect()
    }

    fn kill(&mut self, idx: usize) {
        if std::mem::take(&mut self.entries[idx].alive) {
            self.alive -= 1;
            self.trie.remove(&self.entries[idx].preds, idx);
        }
    }

    fn into_queries(self) -> Vec<ConjunctiveQuery> {
        self.entries
            .into_iter()
            .filter(|e| e.alive)
            .map(|e| e.query)
            .collect()
    }
}

/// Renames existential variables to `U0, U1, …` in variable-index order,
/// keeping answer-variable names (skipping any `U<i>` an answer variable
/// already uses). Structure — atom order, variable indices — is
/// untouched, so piece enumeration over the renamed query is unaffected;
/// only the schedule-dependent fresh names disappear.
fn canonical_named(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let answer: HashSet<Var> = q.answer_vars().iter().copied().collect();
    let reserved: HashSet<&str> = q
        .answer_vars()
        .iter()
        .map(|v| q.var_name(*v).as_str())
        .collect();
    let mut names = q.var_names().to_vec();
    let mut next = 0usize;
    for (i, slot) in names.iter_mut().enumerate() {
        if answer.contains(&Var(i as u32)) {
            continue;
        }
        let name = loop {
            let cand = format!("U{next}");
            next += 1;
            if !reserved.contains(cand.as_str()) {
                break cand;
            }
        };
        *slot = Symbol::intern(&name);
    }
    ConjunctiveQuery::new(q.answer_vars().to_vec(), q.atoms().to_vec(), names)
}

/// A speculatively generated candidate from one piece rewriting of a
/// queued query.
enum Generated {
    /// The raw rewriting exceeded `max_atoms`: counted against the budget
    /// at merge time, never core-minimized (matching the sequential loop,
    /// which skips the core for oversized candidates).
    Oversized,
    /// A candidate under the atom cap (boxed: the payload dwarfs the
    /// dataless `Oversized` variant, and candidates are moved through the
    /// pipeline queue).
    Cand(Box<Candidate>),
}

/// Payload of [`Generated::Cand`].
struct Candidate {
    /// The raw piece rewriting (not core-minimized).
    raw: ConjunctiveQuery,
    /// `raw`'s name-independent structural key, computed on the
    /// worker: the merge dedups on it before touching the kernel.
    key: CanonicalKey,
    /// The core-minimized, canonically renamed form, computed
    /// speculatively when the gate was on at generation time; `None`
    /// otherwise (the merge computes it lazily, only on acceptance).
    /// Either way the value is the same deterministic function of
    /// `raw`, so where it is computed never shows in any output.
    core: Option<ConjunctiveQuery>,
    /// Rule index that generated `raw` — certificate provenance,
    /// carried identically whether or not the run certifies.
    rule: u32,
    /// The piece unifier's `(query atom, head atom)` pairs (see
    /// [`crate::unify::PieceUnifier::unified`]).
    unified: Vec<(u32, u32)>,
}

/// Windows generating at least this many candidates update the
/// speculation gate at their close.
const SPECULATION_MIN_WINDOW: usize = 64;
/// Speculative core computation is switched off while the trailing
/// window's dedup + subsumption hit rate is at or above this percentage
/// (nearly every core would be thrown away), and back on below it.
const SPECULATION_HIT_PCT: usize = 90;

/// How the saturation loop schedules generation against the merge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SaturationMode {
    /// Speculative pipelining on [`Executor::pipeline_ordered`]: window
    /// *i+1* generates while window *i* merges. The default.
    Pipelined,
    /// One `Executor::map` per BFS window with a barrier before the merge
    /// (the pre-pipelining engine, kept for benchmarking the overlap win).
    Barrier,
}

/// Computes a UCQ rewriting of `query` under `theory` (see module docs).
pub fn rewrite(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        &Executor::sequential(),
        SaturationMode::Pipelined,
        &mut |_, _| {},
        None,
    )
}

/// [`rewrite`] with candidate generation and containment sweeps scheduled
/// on `exec`'s worker pool. Deterministic: the result — disjuncts, their
/// renderings, `generated`, `depth`, outcome, every stats counter — is
/// identical to the sequential run for every thread count.
pub fn rewrite_with(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        exec,
        SaturationMode::Pipelined,
        &mut |_, _| {},
        None,
    )
}

/// [`rewrite_with`] with an explicit [`SaturationMode`] — the harness uses
/// this to measure the pipelined engine against the barrier engine on the
/// same workloads. Counters are mode-independent; only wall splits differ.
pub fn rewrite_with_mode(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mode: SaturationMode,
) -> Result<Rewriting, RewriteError> {
    saturate(theory, query, budget, exec, mode, &mut |_, _| {}, None)
}

/// [`rewrite_with_mode`] with certificate emission: alongside the
/// rewriting, returns a [`RewriteCertBundle`] holding one replayable
/// [`crate::cert::RewriteCert`] per accepted disjunct (node 0 is the
/// seed). The rewriting itself — disjuncts, outcome, `generated`, every
/// drift-gated counter — is byte-identical to the uncertified run at
/// every thread count and in both modes: recording happens strictly
/// after each acceptance decision, on the merge thread, with a private
/// kernel-free matcher.
pub fn rewrite_certified(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mode: SaturationMode,
) -> Result<(Rewriting, RewriteCertBundle), RewriteError> {
    let mut cb = CertBuilder::new();
    let r = saturate(
        theory,
        query,
        budget,
        exec,
        mode,
        &mut |_, _| {},
        Some(&mut cb),
    )?;
    Ok((r, cb.into_bundle()))
}

/// Like [`rewrite`], invoking `trace(depth, query)` for every query accepted
/// into the rewriting set (useful for experiments and debugging).
pub fn rewrite_with_trace(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    mut trace: impl FnMut(usize, &ConjunctiveQuery),
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        &Executor::sequential(),
        SaturationMode::Pipelined,
        &mut trace,
        None,
    )
}

/// [`rewrite_with_trace`] on an explicit executor: the trace stream is
/// byte-identical to the sequential one at every thread count (acceptances
/// happen at merge time, in merge order).
pub fn rewrite_with_trace_on(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mut trace: impl FnMut(usize, &ConjunctiveQuery),
) -> Result<Rewriting, RewriteError> {
    saturate(
        theory,
        query,
        budget,
        exec,
        SaturationMode::Pipelined,
        &mut trace,
        None,
    )
}

/// The merge core shared by both saturation modes: all kept-set decisions
/// — aliveness, budget accounting, subsumption, eviction, acceptance,
/// tracing, window bookkeeping — live here, so the pipelined and barrier
/// engines are identical-by-construction in everything but scheduling.
struct Merger<'a> {
    budget: RewriteBudget,
    exec: &'a Executor,
    kernel: &'a HomKernel,
    trace: &'a mut dyn FnMut(usize, &ConjunctiveQuery),
    set: KeptSet,
    /// Structural keys of every candidate processed this run (plus the
    /// seed and accepted cores): the generation-side dedup's seen-set.
    seen: HashSet<CanonicalKey>,
    /// Certificate recorder; `None` on uncertified runs. Recording
    /// happens only at acceptance points on the merge thread, so the
    /// engine's decisions and counters are identical either way.
    certs: Option<&'a mut CertBuilder>,
    /// The speculation gate shared with the generation closure: cleared
    /// when speculative cores are being thrown away wholesale.
    speculate: &'a AtomicBool,
    generated: usize,
    oversized: usize,
    depth_reached: usize,
    truncated: bool,
    stats: RewriteStats,
    cur: WindowStats,
    /// Sequence number of the next item to merge (items are numbered in
    /// submission order, exactly the pipeline's sequence numbers).
    merge_seq: usize,
    /// Items submitted so far (seed + every accepted candidate).
    submitted: usize,
    /// Last sequence number belonging to the window being merged.
    window_last_seq: usize,
}

/// A queued saturation item: the query, its rewriting depth, the
/// generation cap in force when it was submitted (`max_generated + 1 -
/// generated-at-submission` — the most candidates the merge could ever
/// consume from it before the budget break fires), and the query's
/// certificate node (0 on uncertified runs).
type Item = (ConjunctiveQuery, usize, usize, u32);

impl<'a> Merger<'a> {
    fn new(
        budget: RewriteBudget,
        exec: &'a Executor,
        kernel: &'a HomKernel,
        speculate: &'a AtomicBool,
        trace: &'a mut dyn FnMut(usize, &ConjunctiveQuery),
        certs: Option<&'a mut CertBuilder>,
    ) -> Merger<'a> {
        Merger {
            budget,
            exec,
            kernel,
            trace,
            set: KeptSet::new(),
            seen: HashSet::new(),
            certs,
            speculate,
            generated: 0,
            oversized: 0,
            depth_reached: 0,
            truncated: false,
            stats: RewriteStats {
                threads: exec.threads(),
                windows: Vec::new(),
            },
            cur: WindowStats {
                window: 0,
                items: 1,
                ..WindowStats::default()
            },
            merge_seq: 0,
            submitted: 1,
            window_last_seq: 0,
        }
    }

    /// The generation cap for an item submitted right now.
    fn submission_cap(&self) -> usize {
        self.budget.max_generated.saturating_add(1) - self.generated
    }

    /// Closes the window being accumulated (records the kept-set size)
    /// and updates the speculation gate from the closing window's hit
    /// rate. The gate only moves *where* cores are computed (worker pool
    /// vs. merge thread on acceptance), never *what* is computed, so its
    /// schedule-dependent timing is invisible to every counter and
    /// output.
    fn close_window(&mut self) {
        self.cur.kept = self.set.len();
        if self.cur.generated >= SPECULATION_MIN_WINDOW {
            let doomed = self.cur.dedup_hits + self.cur.subsumption_hits;
            self.speculate.store(
                doomed * 100 < self.cur.generated * SPECULATION_HIT_PCT,
                Relaxed,
            );
        }
        self.stats.windows.push(std::mem::take(&mut self.cur));
    }

    /// Merges one item's speculative generation results in submission
    /// order. `Break` means a budget stop: the caller must stop merging.
    /// Accepted candidates are appended to `out` for resubmission.
    #[allow(clippy::too_many_arguments)]
    fn merge_item(
        &mut self,
        q: &ConjunctiveQuery,
        depth: usize,
        node: u32,
        gens: &[Generated],
        uc: UnifyCounters,
        gen_wall: Duration,
        waited: Duration,
        helped: Duration,
        out: &mut Vec<Item>,
    ) -> ControlFlow<()> {
        let seq = self.merge_seq;
        self.merge_seq += 1;
        if seq > self.window_last_seq {
            // First item of the next BFS window: everything submitted and
            // not yet merged was queued together, exactly the batch a
            // barrier engine would drain now.
            self.close_window();
            self.cur.window = self.stats.windows.len();
            self.cur.items = self.submitted - seq;
            self.window_last_seq = self.submitted - 1;
        }
        self.cur.gen_wall += gen_wall;
        // `waited` is a *stall* only where generation ran on a worker; the
        // `helped` sub-interval ran inline on this thread — a sequential
        // executor generates everything inline, and the parallel pipeline
        // steals the head task when no worker has claimed it. Inline work
        // is already charged to `gen_wall`, not waiting (the historical
        // accounting double-counted it, reporting `wait ≈ gen` at one
        // thread). Overlap is the generation work neither the stall nor
        // the steal exposed: what ran while this thread was busy merging.
        let (stall, overlap) = if self.exec.is_sequential() {
            (Duration::ZERO, Duration::ZERO)
        } else {
            (
                waited.saturating_sub(helped),
                gen_wall.saturating_sub(waited),
            )
        };
        self.cur.wait_wall += stall;
        self.cur.overlap_wall += overlap;
        let t0 = Instant::now();
        let flow = self.merge_item_decisions(q, depth, node, gens, uc, out);
        self.cur.merge_wall += t0.elapsed();
        self.submitted += out.len();
        flow
    }

    fn merge_item_decisions(
        &mut self,
        q: &ConjunctiveQuery,
        depth: usize,
        node: u32,
        gens: &[Generated],
        uc: UnifyCounters,
        out: &mut Vec<Item>,
    ) -> ControlFlow<()> {
        // The query may have been evicted by a more general arrival; its
        // speculative candidates are dropped uncounted, exactly as the
        // historical sequential loop never generated for queries that
        // failed its aliveness check. (Its unifier counters are discarded
        // with them, keeping those deterministic across modes too.)
        if !self.set.contains_query(q) {
            self.cur.dead_skipped += 1;
            return ControlFlow::Continue(());
        }
        self.cur.merged += 1;
        self.cur.unifier_probes += uc.probes;
        self.cur.unifier_skipped += uc.skipped;
        for g in gens {
            self.generated += 1;
            self.cur.generated += 1;
            if self.generated > self.budget.max_generated {
                self.truncated = true;
                return ControlFlow::Break(());
            }
            let (raw, key, spec_core, rule, unified) = match g {
                Generated::Oversized => {
                    self.oversized += 1;
                    self.cur.oversized += 1;
                    continue;
                }
                Generated::Cand(c) => (&c.raw, &c.key, &c.core, c.rule, &c.unified),
            };
            // Dedup at birth: a key-equal candidate was already processed,
            // so an alive kept query entails this one (directly, or
            // transitively through evictions) — the subsumption sweep
            // would return `true`; skip it and the entry acquisition.
            if !self.seen.insert(key.clone()) {
                self.cur.dedup_hits += 1;
                continue;
            }
            // The raw candidate's kernel entry. The sweeps run on the raw
            // form: their booleans are invariant under equivalence and
            // `raw ≡ core(raw)`, so the core fold can wait until the
            // candidate is actually accepted.
            let raw_entry = self.kernel.entry_with_key(key.clone(), raw);
            let raw_preds: Vec<Pred> = raw_entry.pred_set().collect();
            // Subsumed: some kept query already covers it (whenever the
            // candidate holds, the kept one does). The trie narrows the
            // sweep to pred-set-compatible entries; the kernel's
            // remaining prefilters run inside.
            let sub = self.set.subset_slots(&raw_preds);
            self.cur.trie_probes += sub.len();
            self.cur.trie_skipped += self.set.len() - sub.len();
            if self
                .kernel
                .subsumed_by_any(self.exec, &raw_entry, &self.set.entry_refs(&sub))
            {
                self.cur.subsumption_hits += 1;
                continue;
            }
            // Evict kept queries covered by the candidate.
            let sup = self.set.superset_slots(&raw_preds);
            self.cur.trie_probes += sup.len();
            self.cur.trie_skipped += self.set.len() - sup.len();
            let dead: Vec<usize> = self
                .kernel
                .covered_by(self.exec, &self.set.entry_refs(&sup), &raw_entry)
                .into_iter()
                .zip(&sup)
                .filter_map(|(covered, idx)| covered.then_some(*idx))
                .collect();
            let evicted = dead.len();
            for idx in dead {
                self.set.kill(idx);
            }
            self.cur.evictions += evicted;
            // Accepted (possibly via the capacity rescue below): only now
            // is the core needed — take the speculative one if the gate
            // had it computed, else fold it here. Identical value either
            // way.
            let cand = match spec_core {
                Some(c) => c.clone(),
                None => canonical_named(&self.kernel.query_core(raw)),
            };
            self.seen.insert(canonical_key(&cand));
            let cand_entry = self.kernel.entry(&cand);
            if self.set.len() >= self.budget.max_queries {
                self.truncated = true;
                // Soundness at the truncation point: if this candidate
                // evicted anything, it must replace the victims' coverage
                // before we stop — breaking between the kills and the push
                // would return a UCQ missing the evicted disjuncts with
                // nothing standing in for them. (With the push guarded by
                // `len >= max_queries`, the set can only be at capacity
                // here with zero victims killed unless it was over
                // capacity to begin with — but the rescue keeps the break
                // sound for every budget, including `max_queries = 0`,
                // where the unguarded seed push overflows.)
                if evicted > 0 {
                    self.depth_reached = self.depth_reached.max(depth + 1);
                    (self.trace)(depth + 1, &cand);
                    // The certificate records exactly the accepted nodes,
                    // so it is cut only when the push actually happens.
                    let cn = match self.certs.as_deref_mut() {
                        Some(cb) => cb.record_accept(node, rule, unified, raw, &cand),
                        None => 0,
                    };
                    self.set.push(cand, cand_entry, cn);
                    self.cur.accepted += 1;
                }
                return ControlFlow::Break(());
            }
            self.depth_reached = self.depth_reached.max(depth + 1);
            (self.trace)(depth + 1, &cand);
            let cn = match self.certs.as_deref_mut() {
                Some(cb) => cb.record_accept(node, rule, unified, raw, &cand),
                None => 0,
            };
            let cap = self.submission_cap();
            out.push((cand.clone(), depth + 1, cap, cn));
            self.set.push(cand, cand_entry, cn);
            self.cur.accepted += 1;
        }
        ControlFlow::Continue(())
    }
}

fn saturate(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    exec: &Executor,
    mode: SaturationMode,
    trace: &mut dyn FnMut(usize, &ConjunctiveQuery),
    mut certs: Option<&mut CertBuilder>,
) -> Result<Rewriting, RewriteError> {
    for r in theory.rules() {
        if r.has_builtin_body() {
            return Err(RewriteError::BuiltinBody { rule: r.render() });
        }
    }

    // One private kernel per run: the caches warm up on this saturation's
    // own queries and the counters describe exactly this run.
    let kernel = HomKernel::new();
    let seed = canonical_named(&kernel.query_core(query));
    trace(0, &seed);
    if let Some(cb) = certs.as_deref_mut() {
        cb.record_seed(query, &seed);
    }
    let seed_entry = kernel.entry(&seed);
    // Speculation gate: workers read it before folding cores; the merge
    // thread updates it at window boundaries from the trailing window's
    // doomed-candidate rate.
    let speculate = AtomicBool::new(true);
    let mut merger = Merger::new(budget, exec, &kernel, &speculate, trace, certs);
    merger.seen.insert(canonical_key(&seed));
    merger.set.push(seed.clone(), seed_entry, 0);
    let tindex = TheoryIndex::new(theory);

    // Speculative generation: piece rewritings (and, when the gate is
    // open, cores) of one queued query, a pure per-item function
    // scheduled on the worker pool. `cap` bounds the number of `Generated`
    // the item may still contribute before the run's generation budget is
    // spent — fixed at submission time, so it is identical across modes
    // and schedules, and never smaller than what the merge will actually
    // count (generated only grows between submission and merge).
    let generate =
        |q: &ConjunctiveQuery, cap: usize| -> (Vec<Generated>, UnifyCounters, Duration) {
            let t0 = Instant::now();
            let qmask = query_pred_mask(q);
            let spec = speculate.load(Relaxed);
            let mut uc = UnifyCounters::default();
            let mut out = Vec::new();
            for (ri, (rule, ridx)) in theory.rules().iter().zip(tindex.rules()).enumerate() {
                if out.len() >= cap {
                    break;
                }
                if ridx.mask() & qmask == 0 {
                    // No head predicate occurs in the query: every (query
                    // atom × head atom) pairing is pruned by the rule mask.
                    uc.skipped += q.atoms().len() * ridx.head_len();
                    continue;
                }
                for pu in piece_rewritings_indexed(q, rule, ridx, cap - out.len(), &mut uc) {
                    if pu.result.size() > budget.max_atoms {
                        out.push(Generated::Oversized);
                    } else {
                        let key = canonical_key(&pu.result);
                        let core = spec.then(|| canonical_named(&kernel.query_core(&pu.result)));
                        out.push(Generated::Cand(Box::new(Candidate {
                            raw: pu.result,
                            key,
                            core,
                            rule: ri as u32,
                            unified: pu
                                .unified
                                .iter()
                                .map(|&(a, h)| (a as u32, h as u32))
                                .collect(),
                        })));
                    }
                }
            }
            (out, uc, t0.elapsed())
        };

    match mode {
        SaturationMode::Pipelined => {
            exec.pipeline_ordered(
                vec![(seed, 0usize, budget.max_generated.saturating_add(1), 0u32)],
                |(q, _, cap, _)| generate(q, *cap),
                |(q, depth, _, node), (gens, uc, gen_wall), ctx| {
                    let mut out = Vec::new();
                    let flow = merger.merge_item(
                        &q,
                        depth,
                        node,
                        &gens,
                        uc,
                        gen_wall,
                        ctx.waited(),
                        ctx.helped(),
                        &mut out,
                    );
                    for item in out {
                        ctx.submit(item);
                    }
                    flow
                },
            );
        }
        SaturationMode::Barrier => {
            let mut queue: VecDeque<Item> = VecDeque::new();
            queue.push_back((seed, 0, budget.max_generated.saturating_add(1), 0));
            'outer: while !queue.is_empty() {
                let batch: Vec<Item> = queue.drain(..).collect();
                let t0 = Instant::now();
                let gens = exec.map(&batch, |(q, _, cap, _)| generate(q, *cap));
                let gen_phase = t0.elapsed();
                // `Executor::map` runs single-item batches inline on this
                // thread; that generation phase is then inline work, not a
                // stall (mirrors the map's own inline condition).
                let inline_map = batch.len() <= 1;
                for (i, ((q, depth, _, node), (g, uc, gen_wall))) in
                    batch.iter().zip(&gens).enumerate()
                {
                    // The merge sat out the whole generation phase before
                    // its first item; charge that stall to the window.
                    let waited = if i == 0 { gen_phase } else { Duration::ZERO };
                    let helped = if i == 0 && inline_map {
                        gen_phase
                    } else {
                        Duration::ZERO
                    };
                    let mut out = Vec::new();
                    let flow = merger.merge_item(
                        q, *depth, *node, g, *uc, *gen_wall, waited, helped, &mut out,
                    );
                    queue.extend(out);
                    if flow.is_break() {
                        break 'outer;
                    }
                }
            }
        }
    }
    merger.close_window();
    if let Some(cb) = merger.certs.as_deref_mut() {
        // `into_queries` keeps alive entries in insertion order, so this
        // is exactly the final UCQ's disjunct order.
        let finals: Vec<u32> = merger
            .set
            .entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| e.node)
            .collect();
        cb.set_finals(finals);
    }

    let outcome = if merger.truncated {
        RewriteOutcome::Budget
    } else if merger.oversized > 0 {
        RewriteOutcome::AtomCapped
    } else {
        RewriteOutcome::Complete
    };
    let Merger {
        set,
        generated,
        oversized,
        depth_reached,
        stats,
        ..
    } = merger;
    Ok(Rewriting {
        ucq: Ucq::new(set.into_queries()),
        outcome,
        generated,
        oversized_discarded: oversized,
        depth: depth_reached,
        stats,
        hom: kernel.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_query, parse_theory};

    fn run(theory: &str, query: &str) -> Rewriting {
        rewrite(
            &parse_theory(theory).unwrap(),
            &parse_query(query).unwrap(),
            RewriteBudget::default(),
        )
        .unwrap()
    }

    #[test]
    fn example_1_family() {
        let r = run(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
        );
        assert!(r.is_complete());
        // mother(X,M) ∨ human(X) ∨ mother(U,X) (X a mother's child is human,
        // and humans have mothers).
        assert_eq!(r.ucq.len(), 3);
    }

    #[test]
    fn exercise_12_linear_path() {
        // T_p = e(X,Y) -> e(Y,Z) is BDD; a 2-path rewrites to a single edge.
        let r = run("e(X,Y) -> e(Y,Z).", "? :- e(A,B), e(B,C).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn longer_paths_still_one_edge() {
        let r = run("e(X,Y) -> e(Y,Z).", "? :- e(A,B), e(B,C), e(C,D), e(D,E).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn anchored_query_keeps_prefix_disjuncts() {
        // Ch(T,D) has a 2-path from A iff A touches any edge of D (every
        // element grows an infinite forward path), so the rewriting is the
        // pair of single-edge queries around A.
        let r = run("e(X,Y) -> e(Y,Z).", "?(A) :- e(A,B), e(B,C).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 2); // e(A,B) and e(B,A)
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn transitivity_diverges() {
        // Unbounded Datalog: not BDD; the engine must hit its budget.
        let r = rewrite(
            &parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap(),
            &parse_query("? :- e(a, b).").unwrap(),
            RewriteBudget {
                max_queries: 64,
                max_generated: 2_000,
                max_atoms: 12,
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RewriteOutcome::Budget);
        assert!(r.ucq.len() > 8, "paths of many lengths should appear");
    }

    #[test]
    fn t_d_is_rejected() {
        let t = parse_theory("true -> r(X,X).\ndom(X) -> r(X,Z).").unwrap();
        let q = parse_query("? :- r(A,B).").unwrap();
        let err = rewrite(&t, &q, RewriteBudget::default()).unwrap_err();
        assert!(matches!(err, RewriteError::BuiltinBody { .. }));
    }

    #[test]
    fn guarded_two_rule_theory() {
        let r = run("p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).", "? :- p(A).");
        // p(A) ∨ q(A) ∨ p(B),e(B,A) ∨ q(B),e(B,A) ∨ longer chains... p is
        // propagated along edges, so this is unbounded Datalog-ish — but
        // each new disjunct extends the chain: budget or growth expected.
        assert!(r.ucq.len() >= 2);
    }

    #[test]
    fn sticky_example_39_atomic_query() {
        // Example 39: E(x,y,y',t), R(x,t') -> ∃y'' E(x,y',y,t') — for the
        // fully existential atomic query, every rewriting step introduces an
        // e-atom, so all rewrites are subsumed by the query itself.
        let r = run("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).", "? :- e(A,B,C,D).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        // Anchoring the spectator and the color makes the r-atom matter.
        let r2 = run(
            "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
            "?(A,D) :- e(A,B,C,D).",
        );
        assert!(r2.is_complete());
        assert_eq!(r2.ucq.len(), 2);
        assert_eq!(r2.rs(), 2);
    }

    /// Every fixture the engine covers, as (label, theory, query, budget).
    fn fixtures() -> Vec<(&'static str, &'static str, &'static str, RewriteBudget)> {
        vec![
            (
                "t_a",
                "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
                "?(X) :- mother(X, M).",
                RewriteBudget::default(),
            ),
            (
                "t_p",
                "e(X,Y) -> e(Y,Z).",
                "?(A) :- e(A,B), e(B,C).",
                RewriteBudget::default(),
            ),
            (
                "ex39",
                "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
                "?(A,D) :- e(A,B,C,D).",
                RewriteBudget::default(),
            ),
            (
                "guarded",
                "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
                "? :- p(A).",
                RewriteBudget::default(),
            ),
            (
                "tc-budget",
                "e(X,Y), e(Y,Z) -> e(X,Z).",
                "? :- e(a, b).",
                RewriteBudget {
                    max_queries: 64,
                    max_generated: 2_000,
                    max_atoms: 12,
                },
            ),
            // The first rule's candidate (q(a) ∧ b(a)) is accepted and
            // requeued, then evicted by the second rule's more general
            // q(a) inside the same window — its requeued item must be
            // dead-skipped, not merged.
            (
                "evict-requeue",
                "q(X), b(X) -> p(X).\nq(X) -> p(X).",
                "? :- p(a).",
                RewriteBudget::default(),
            ),
        ]
    }

    fn renders(r: &Rewriting) -> Vec<String> {
        r.ucq.disjuncts().iter().map(|d| d.render()).collect()
    }

    #[test]
    fn parallel_rewrite_is_identical_to_sequential() {
        for (label, t, q, budget) in fixtures() {
            // The budget-truncation path is what matters on the divergent
            // fixture; a smaller budget exercises it at a fraction of the
            // cost.
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let seq = rewrite(&theory, &query, budget).unwrap();
            for threads in [2, 4] {
                let par = rewrite_with(&theory, &query, budget, &Executor::with_threads(threads))
                    .unwrap();
                assert_eq!(par.outcome, seq.outcome, "{label} @{threads}: outcome");
                assert_eq!(
                    par.generated, seq.generated,
                    "{label} @{threads}: generated"
                );
                assert_eq!(par.depth, seq.depth, "{label} @{threads}: depth");
                assert_eq!(
                    renders(&par),
                    renders(&seq),
                    "{label} @{threads}: saturated set"
                );
            }
        }
    }

    /// The saturated sets the pre-index, pre-parallel engine produced on
    /// these fixtures, pinned up to the canonical variable renaming:
    /// identical outcome / generated / depth, and a bijection between the
    /// disjuncts and the expected queries under [`equivalent`].
    #[test]
    fn saturated_sets_match_prechange_engine() {
        use qr_hom::containment::equivalent;
        let expected: Vec<(&str, RewriteOutcome, usize, usize, Vec<&str>)> = vec![
            (
                "t_a",
                RewriteOutcome::Complete,
                2,
                2,
                vec![
                    "?(X) :- mother(X, M).",
                    "?(X) :- human(X).",
                    "?(X) :- mother(U, X).",
                ],
            ),
            (
                "t_p",
                RewriteOutcome::Complete,
                2,
                2,
                vec!["?(A) :- e(A, B).", "?(A) :- e(B, A)."],
            ),
            (
                "ex39",
                RewriteOutcome::Complete,
                2,
                1,
                vec!["?(A,D) :- e(A,B,C,D).", "?(A,D) :- e(A,Y,B,T), r(A,D)."],
            ),
            (
                "guarded",
                RewriteOutcome::Complete,
                2,
                1,
                vec!["? :- p(A).", "? :- q(A)."],
            ),
            (
                "tc-budget",
                RewriteOutcome::Budget,
                2001,
                11,
                vec![], // pinned by shape below: chains of length 1..=12
            ),
            (
                "evict-requeue",
                RewriteOutcome::Complete,
                2,
                1,
                vec!["? :- p(a).", "? :- q(a)."],
            ),
        ];
        for ((label, t, q, budget), (elabel, outcome, generated, depth, disjuncts)) in
            fixtures().into_iter().zip(expected)
        {
            assert_eq!(label, elabel);
            let r = rewrite(&parse_theory(t).unwrap(), &parse_query(q).unwrap(), budget).unwrap();
            assert_eq!(r.outcome, outcome, "{label}: outcome");
            assert_eq!(r.generated, generated, "{label}: generated");
            assert_eq!(r.depth, depth, "{label}: depth");
            if label == "tc-budget" {
                // One chain disjunct per length 1..=12, exactly as before.
                let mut sizes: Vec<usize> = r.ucq.disjuncts().iter().map(|d| d.size()).collect();
                sizes.sort_unstable();
                assert_eq!(sizes, (1..=12).collect::<Vec<_>>(), "tc-budget: sizes");
                continue;
            }
            assert_eq!(r.ucq.len(), disjuncts.len(), "{label}: set size");
            let want: Vec<ConjunctiveQuery> =
                disjuncts.iter().map(|s| parse_query(s).unwrap()).collect();
            for w in &want {
                assert!(
                    r.ucq.disjuncts().iter().any(|d| equivalent(d, w)),
                    "{label}: missing disjunct equivalent to {}",
                    w.render()
                );
            }
            for d in r.ucq.disjuncts() {
                assert!(
                    want.iter().any(|w| equivalent(d, w)),
                    "{label}: unexpected disjunct {}",
                    d.render()
                );
            }
        }
    }

    #[test]
    fn atom_cap_only_losses_report_atom_capped() {
        // Example 41's rule grows every rewriting by one atom, so with a
        // generous generation budget the only losses are atom-cap
        // discards: saturated modulo the cap, not out of budget.
        let r = rewrite(
            &parse_theory("e(X,Y,Z), r(X,Z) -> r(Y,Z).").unwrap(),
            &parse_query("?(Y,Z) :- r(Y,Z).").unwrap(),
            RewriteBudget {
                max_queries: 512,
                max_generated: 20_000,
                max_atoms: 7,
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RewriteOutcome::AtomCapped);
        assert!(r.oversized_discarded > 0, "cap discards must be counted");
        assert_eq!(r.stats.oversized(), r.oversized_discarded);
        assert!(
            !r.is_complete(),
            "atom-capped runs are not complete rewritings"
        );
    }

    #[test]
    fn complete_runs_report_zero_oversized() {
        let r = run("e(X,Y) -> e(Y,Z).", "?(A) :- e(A,B), e(B,C).");
        assert_eq!(r.outcome, RewriteOutcome::Complete);
        assert_eq!(r.oversized_discarded, 0);
    }

    /// Strips the schedule-dependent wall splits, keeping every
    /// deterministic per-window counter.
    #[allow(clippy::type_complexity)]
    fn counter_rows(s: &crate::stats::RewriteStats) -> Vec<[usize; 15]> {
        s.windows
            .iter()
            .map(|w| {
                [
                    w.window,
                    w.items,
                    w.merged,
                    w.dead_skipped,
                    w.generated,
                    w.dedup_hits,
                    w.subsumption_hits,
                    w.evictions,
                    w.oversized,
                    w.accepted,
                    w.kept,
                    w.unifier_probes,
                    w.unifier_skipped,
                    w.trie_probes,
                    w.trie_skipped,
                ]
            })
            .collect()
    }

    #[test]
    fn stats_counters_identical_across_modes_and_threads() {
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let seq = rewrite(&theory, &query, budget).unwrap();
            // Totals reconcile with the run's headline numbers.
            assert_eq!(seq.stats.generated(), seq.generated, "{label}");
            assert_eq!(seq.stats.oversized(), seq.oversized_discarded, "{label}");
            assert_eq!(
                1 + seq.stats.accepted() - seq.stats.evictions(),
                seq.ucq.len(),
                "{label}: seed + accepted - evicted = surviving disjuncts"
            );
            assert_eq!(
                seq.stats.windows.last().unwrap().kept,
                seq.ucq.len(),
                "{label}: final window records the surviving set size"
            );
            // Sequentially, generation runs inline on the merge thread:
            // nothing stalls and nothing overlaps.
            assert_eq!(seq.stats.threads, 1, "{label}");
            for w in &seq.stats.windows {
                assert_eq!(w.wait_wall, Duration::ZERO, "{label}: no stall @1");
                assert_eq!(w.overlap_wall, Duration::ZERO, "{label}: no overlap @1");
            }
            let expect = counter_rows(&seq.stats);
            for threads in [1, 2, 4] {
                let exec = Executor::with_threads(threads);
                for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                    let r = rewrite_with_mode(&theory, &query, budget, &exec, mode).unwrap();
                    assert_eq!(
                        counter_rows(&r.stats),
                        expect,
                        "{label} @{threads} {mode:?}: window counters"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_stream_identical_across_thread_counts() {
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let mut expect = Vec::new();
            rewrite_with_trace(&theory, &query, budget, |d, cq| {
                expect.push((d, cq.render()));
            })
            .unwrap();
            for threads in [2, 4] {
                let mut seen = Vec::new();
                rewrite_with_trace_on(
                    &theory,
                    &query,
                    budget,
                    &Executor::with_threads(threads),
                    |d, cq| seen.push((d, cq.render())),
                )
                .unwrap();
                assert_eq!(seen, expect, "{label} @{threads}: trace stream");
            }
        }
    }

    #[test]
    fn signature_is_a_set_not_a_multiset() {
        // A homomorphism may collapse atoms: the 2-path maps into the
        // self-loop, even though the source uses `e` twice and the target
        // once. The kernel prefilter (which replaced the engine-local
        // signature index) must not prune this.
        let k = HomKernel::new();
        let path = parse_query("? :- e(X,Y), e(Y,Z).").unwrap();
        let selfloop = parse_query("? :- e(A,A).").unwrap();
        assert!(contains(&selfloop, &path));
        assert!(!k.prefilter_rejects_pair(&selfloop, &path));
        assert!(!k.prefilter_rejects_pair(&path, &selfloop));
        // Disjoint predicates are pruned in both directions.
        let other = parse_query("? :- f(X,Y).").unwrap();
        assert!(k.prefilter_rejects_pair(&path, &other));
        assert!(k.prefilter_rejects_pair(&other, &path));
        // Strict subset works one way only.
        let mixed = parse_query("? :- e(X,Y), f(Y,Z).").unwrap();
        assert!(!k.prefilter_rejects_pair(&mixed, &path));
        assert!(k.prefilter_rejects_pair(&path, &mixed));
    }

    /// The cache/prefilter tier of [`HomStats`] is incremented only at
    /// merge-thread points (entry acquisition, sequential prefilter
    /// passes), so it must be identical across thread counts and both
    /// saturation modes — these counters are gated in CI.
    #[test]
    fn hom_cache_counters_identical_across_modes_and_threads() {
        fn cache_tier(h: &qr_hom::HomStats) -> (u64, u64, u64, u64, u64, u64) {
            (
                h.freezes,
                h.freeze_cache_hits,
                h.plan_compiles,
                h.plan_cache_hits,
                h.prefilter_rejects,
                h.components,
            )
        }
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let seq = rewrite(&theory, &query, budget).unwrap();
            assert!(seq.hom.freezes > 0, "{label}: the kernel froze something");
            let expect = cache_tier(&seq.hom);
            for threads in [1, 2, 4] {
                let exec = Executor::with_threads(threads);
                for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                    let r = rewrite_with_mode(&theory, &query, budget, &exec, mode).unwrap();
                    assert_eq!(
                        cache_tier(&r.hom),
                        expect,
                        "{label} @{threads} {mode:?}: hom cache counters"
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_renaming_keeps_answer_names_and_structure() {
        let q = parse_query("?(X) :- mother(X, M), human(H).").unwrap();
        let c = canonical_named(&q);
        assert_eq!(c.answer_vars(), q.answer_vars());
        assert_eq!(c.atoms(), q.atoms());
        assert_eq!(c.render(), "?(X) :- mother(X,U0), human(U1)");
        // An answer variable already named like a canonical slot is skipped.
        let q2 = parse_query("?(U0) :- e(U0, Y).").unwrap();
        assert_eq!(canonical_named(&q2).render(), "?(U0) :- e(U0,U1)");
    }

    #[test]
    fn trace_sees_every_kept_query() {
        let t = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
        let q = parse_query("?(X) :- mother(X, M).").unwrap();
        let mut seen = Vec::new();
        let r = rewrite_with_trace(&t, &q, RewriteBudget::default(), |d, cq| {
            seen.push((d, cq.render()));
        })
        .unwrap();
        assert!(seen.len() >= r.ucq.len());
        assert_eq!(seen[0].0, 0);
    }

    /// Satellite of the wait-accounting fix: at one thread, generation
    /// runs inline on the merge thread, so no window may report a stall
    /// (the old pipeline charged the full inline generation time to
    /// `wait_wall`, making `wait_ms ≈ gen_ms` at one thread) or any
    /// overlap, in either saturation mode.
    #[test]
    fn inline_generation_reports_zero_wait_and_overlap() {
        let exec = Executor::with_threads(1);
        for (label, t, q, budget) in fixtures() {
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                let r = rewrite_with_mode(&theory, &query, budget, &exec, mode).unwrap();
                assert_eq!(r.stats.wait_wall(), Duration::ZERO, "{label} {mode:?}");
                assert_eq!(r.stats.overlap_wall(), Duration::ZERO, "{label} {mode:?}");
                assert!(r.stats.gen_wall() > Duration::ZERO, "{label} {mode:?}");
            }
        }
    }

    /// The evict-requeue fixture pins the eviction-to-dead-skip path: the
    /// first rule's accepted candidate is evicted by the second rule's
    /// more general one before its requeued item is merged, so exactly
    /// one item must be dead-skipped — on every schedule.
    #[test]
    fn eviction_of_requeued_item_fires_dead_skip() {
        let (_, t, q, budget) = fixtures().pop().unwrap();
        let theory = parse_theory(t).unwrap();
        let query = parse_query(q).unwrap();
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                let r = rewrite_with_mode(&theory, &query, budget, &exec, mode).unwrap();
                assert_eq!(r.stats.dead_skipped(), 1, "@{threads} {mode:?}");
                assert_eq!(r.stats.evictions(), 1, "@{threads} {mode:?}");
                assert_eq!(r.stats.accepted(), 2, "@{threads} {mode:?}");
            }
        }
    }

    /// Generation-side dedup on the transitive-closure fixture: chain
    /// candidates are re-derived along many resolution orders, so most
    /// generations must die at the seen-set and the kernel must see far
    /// fewer distinct queries than there are generations.
    #[test]
    fn dedup_prunes_most_regenerations_on_transitive_closure() {
        let r = rewrite(
            &parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap(),
            &parse_query("? :- e(a, b).").unwrap(),
            RewriteBudget {
                max_queries: 64,
                max_generated: 2_000,
                max_atoms: 12,
            },
        )
        .unwrap();
        assert!(
            r.stats.dedup_hits() * 2 > r.generated,
            "most generations must die at birth ({} dedup / {})",
            r.stats.dedup_hits(),
            r.generated
        );
        let entries = r.hom.freezes + r.hom.freeze_cache_hits;
        assert!(
            entries * 3 < r.generated as u64,
            "kernel entry acquisitions ({entries}) should be a small \
             fraction of generations ({})",
            r.generated
        );
        assert!(r.stats.unifier_probes() > 0, "attempts are still counted");
    }

    /// On a multi-predicate theory, both prefilters earn their keep: the
    /// piece-unifier index prunes predicate-mismatched pairings and the
    /// trie keeps pred-set-incompatible kept entries away from the
    /// kernel. (The transitive-closure fixture can't show this — with a
    /// single predicate, nothing is ever incompatible.)
    #[test]
    fn index_and_trie_prune_on_multi_predicate_theories() {
        let r = run("p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).", "? :- p(A).");
        assert!(r.stats.unifier_skipped() > 0, "index must prune pairings");
        assert!(r.stats.trie_skipped() > 0, "trie must prune kept entries");
        assert!(r.stats.trie_probes() > 0);
    }

    /// The speculation gate never changes what is generated: pipelined
    /// runs submit exactly the items barrier runs queue, so `generated`
    /// is identical (the ≤ regression bound of the issue, pinned to
    /// equality by counter determinism).
    #[test]
    fn pipelined_generates_no_more_than_barrier() {
        for (label, t, q, budget) in fixtures() {
            let budget = if label == "tc-budget" {
                RewriteBudget {
                    max_queries: 24,
                    max_generated: 300,
                    max_atoms: 8,
                }
            } else {
                budget
            };
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            for threads in [1, 2, 4] {
                let exec = Executor::with_threads(threads);
                let b = rewrite_with_mode(&theory, &query, budget, &exec, SaturationMode::Barrier)
                    .unwrap();
                let p =
                    rewrite_with_mode(&theory, &query, budget, &exec, SaturationMode::Pipelined)
                        .unwrap();
                assert!(
                    p.generated <= b.generated,
                    "{label} @{threads}: pipelined regenerated more"
                );
                assert_eq!(p.generated, b.generated, "{label} @{threads}");
            }
        }
    }

    /// A certified run yields a bundle whose finals are exactly the UCQ's
    /// disjuncts (verbatim clones, in disjunct order), whose chains ground
    /// out at the seed, and whose steps replay to the recorded raw forms.
    #[test]
    fn certified_bundle_aligns_with_the_rewriting() {
        use crate::unify::apply_piece_unifier;
        for (label, t, q, budget) in fixtures() {
            let theory = parse_theory(t).unwrap();
            let query = parse_query(q).unwrap();
            let exec = Executor::sequential();
            let plain =
                rewrite_with_mode(&theory, &query, budget, &exec, SaturationMode::Pipelined)
                    .unwrap();
            let (r, bundle) =
                rewrite_certified(&theory, &query, budget, &exec, SaturationMode::Pipelined)
                    .unwrap();
            // Certification is invisible to the rewriting itself.
            assert_eq!(r.ucq, plain.ucq, "{label}");
            assert_eq!(r.generated, plain.generated, "{label}");
            assert_eq!(
                counter_rows(&r.stats),
                counter_rows(&plain.stats),
                "{label}"
            );
            // Finals ↔ disjuncts, verbatim and in order.
            assert_eq!(bundle.final_disjuncts.len(), r.ucq.len(), "{label}");
            for (d, &node) in r.ucq.disjuncts().iter().zip(&bundle.final_disjuncts) {
                assert_eq!(*d, bundle.certs[node as usize].query, "{label}");
            }
            // Chains are well-founded and every step replays.
            assert!(bundle.certs[0].step.is_none(), "{label}: node 0 is seed");
            for (i, cert) in bundle.certs.iter().enumerate().skip(1) {
                let step = cert.step.as_ref().expect("non-seed nodes record a step");
                assert!((step.parent as usize) < i, "{label}: parent before child");
                let parent = &bundle.certs[step.parent as usize].query;
                let rule = &theory.rules()[step.rule as usize];
                let pairs: Vec<(usize, usize)> = step
                    .unified
                    .iter()
                    .map(|&(a, h)| (a as usize, h as usize))
                    .collect();
                let raw = apply_piece_unifier(parent, rule, &pairs)
                    .unwrap_or_else(|| panic!("{label}: node {i} must replay"));
                assert_eq!(
                    cert.to_query.len(),
                    raw.var_names().len(),
                    "{label}: to_query spans the raw variables"
                );
            }
        }
    }
}
