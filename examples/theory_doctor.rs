//! `theory_doctor` — point it at a rules file (or pipe rules on stdin) and
//! get a full diagnosis: syntactic classes, termination probes, rewriting
//! behaviour on its atomic queries, and a locality probe on a sample
//! instance, in the vocabulary of the paper.
//!
//! ```bash
//! cargo run --release --example theory_doctor -- my_theory.rules
//! echo 'e(X,Y) -> e(Y,Z).' | cargo run --release --example theory_doctor
//! ```

use std::io::Read;

use query_rewritability::chase::{all_instances_termination, core_termination, CoreTermBudget};
use query_rewritability::classes::{
    has_detached_rules, is_binary, is_connected, is_datalog, is_frontier_guarded, is_frontier_one,
    is_guarded, is_linear, is_sticky, is_weakly_acyclic,
};
use query_rewritability::prelude::*;
use query_rewritability::rewrite::{rewrite, RewriteBudget, RewriteError};
use query_rewritability::syntax::query::{QAtom, QTerm, Var};

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
    };
    let theory = match parse_theory(&src) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    println!("theory ({} rules):", theory.len());
    print!("{}", theory.render());

    println!("\n— syntactic classes —");
    type ClassCheck = fn(&Theory) -> bool;
    let classes: [(&str, ClassCheck); 10] = [
        ("linear", is_linear),
        ("datalog", is_datalog),
        ("guarded", is_guarded),
        ("frontier-guarded", is_frontier_guarded),
        ("frontier-one", is_frontier_one),
        ("sticky", is_sticky),
        ("binary signature", is_binary),
        ("connected", is_connected),
        ("has detached rules", has_detached_rules),
        ("weakly acyclic", is_weakly_acyclic),
    ];
    for (name, f) in classes {
        println!("  {name:<20} {}", f(&theory));
    }
    if is_linear(&theory) || is_sticky(&theory) {
        println!("  => member of a known decidable BDD class (local or bd-local)");
    }

    // A canonical probe instance: one "frozen" fact per predicate.
    let mut probe = Instance::new();
    for (i, p) in theory.signature().into_iter().enumerate() {
        if p.arity() == 0 {
            continue;
        }
        let args: Vec<TermId> = (0..p.arity())
            .map(|j| TermId::constant(Symbol::intern(&format!("c{i}_{j}"))))
            .collect();
        probe.insert(Fact::new(p, args));
    }

    println!("\n— termination probes (on the critical-style instance {probe}) —");
    // Theories with true/dom-scoped rules (T_d-style) grow several fresh
    // terms per element per round: deep probes explode, and such theories
    // never fold onto a prefix anyway — keep their budgets shallow.
    let (ait_rounds, core_budget) = if theory.has_builtin_bodies() {
        (
            4,
            CoreTermBudget {
                max_depth: 2,
                lookahead: 1,
                max_facts: 5_000,
            },
        )
    } else {
        (12, CoreTermBudget::default())
    };
    match all_instances_termination(&theory, &probe, ait_rounds) {
        Some(n) => println!("  chase fixpoint at round {n} (all-instances-terminating here)"),
        None => println!("  no chase fixpoint within {ait_rounds} rounds"),
    }
    match core_termination(&theory, &probe, core_budget).depth() {
        Some(c) => println!("  core termination certified: c_{{T,D}} = {c} (FES evidence)"),
        None => println!("  no core-termination certificate within budget"),
    }

    println!("\n— rewriting probes (atomic queries, Theorem 1) —");
    for p in theory.signature() {
        if p.arity() == 0 {
            continue;
        }
        let vars: Vec<QTerm> = (0..p.arity()).map(|i| QTerm::Var(Var(i))).collect();
        let names: Vec<Symbol> = (0..p.arity())
            .map(|i| Symbol::intern(&format!("A{i}")))
            .collect();
        let answer: Vec<Var> = (0..p.arity()).map(Var).collect();
        let q = ConjunctiveQuery::new(answer, vec![QAtom::new(p, vars)], names);
        match rewrite(&theory, &q, RewriteBudget::default()) {
            Ok(r) if r.is_complete() => println!(
                "  rew({}) complete: {} disjuncts, rs = {}",
                q.render(),
                r.ucq.len(),
                r.rs()
            ),
            Ok(r) => println!(
                "  rew({}) hit its budget at {} disjuncts (divergence evidence — maybe not BDD)",
                q.render(),
                r.ucq.len()
            ),
            Err(RewriteError::BuiltinBody { .. }) => {
                println!(
                    "  rew({}): theory has true/dom-scoped rules; use the marked-query \
                     process (qr-core) for T_d-style theories",
                    q.render()
                );
                break;
            }
        }
    }

    println!("\ndone.");
}
