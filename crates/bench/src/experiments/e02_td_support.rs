//! **E2 — Theorem 5B(ii)**: the minimal support of `φ_R^n(a,b)` in
//! `G^{2^n}(a,b)` is the **whole path** (every proper subset disconnects
//! `a` from `b`), so `rew(φ_R^n)` has a disjunct of size `2^n` — and `T_d`
//! is not distancing (Definition 43): the chase pulls `a` and `b` to
//! distance `O(n)` while they are `2^n` apart in `D`.

use std::time::Instant;

use qr_chase::provenance::minimal_support;
use qr_chase::ChaseBudget;
use qr_classes::empirical::distancing_profile;
use qr_core::theories::{green_path, phi_r_n, t_d};

use crate::Table;

/// Largest `n` covered by the default run.
pub const MAX_N: usize = 3;

/// Chase depth that suffices for `φ_R^n` on `G^{2^n}` (E1 measures it; the
/// bound `2n + 1` covers the default range).
pub fn depth_for(n: usize) -> usize {
    2 * n + 1
}

/// The E2 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E2  Thm 5B(ii) — minimal support of φ_R^n is the whole path; T_d is not distancing",
        "support = 2^n (the full G-path); dist_D/dist_Ch crosses 1 at n=3 (2^n vs ~2n+1 through the grid)",
        &["n", "|D| = 2^n", "min support", "support = D", "worst dist_Ch", "worst dist_D/dist_Ch", "ms"],
    );
    for n in 0..=MAX_N {
        let t0 = Instant::now();
        let len = 1usize << n;
        let (db, a, b) = green_path(len, "a");
        let budget = ChaseBudget {
            max_rounds: depth_for(n),
            max_facts: 2_000_000,
        };
        let support =
            minimal_support(&t_d(), &db, &phi_r_n(n), &[a, b], budget).expect("entailed by E1");
        let dp = distancing_profile(&t_d(), &db, depth_for(n));
        let (d_ch, ratio) = dp
            .worst
            .map(|(_, _, d_ch, _)| {
                (
                    d_ch.to_string(),
                    format!("{:.1}", dp.max_ratio.unwrap_or(0.0)),
                )
            })
            .unwrap_or(("-".into(), "-".into()));
        t.row(vec![
            n.to_string(),
            db.len().to_string(),
            support.len().to_string(),
            (support == db).to_string(),
            d_ch,
            ratio,
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_is_whole_path_small() {
        for n in 0..=2usize {
            let (db, a, b) = green_path(1 << n, "s");
            let budget = ChaseBudget {
                max_rounds: depth_for(n),
                max_facts: 500_000,
            };
            let s = minimal_support(&t_d(), &db, &phi_r_n(n), &[a, b], budget).unwrap();
            assert_eq!(s, db, "n={n}");
        }
    }

    #[test]
    fn distance_contracts_on_g8() {
        // On G^8 the endpoints are 8 apart in D but reachable in ≤ 7 steps
        // through the grid towers (the 2^n-vs-(2n+1) crossover at n = 3);
        // for larger n the gap is exponential.
        let (db, _, _) = green_path(8, "dc");
        let dp = distancing_profile(&t_d(), &db, 7);
        assert!(dp.max_ratio.unwrap() > 1.0, "{:?}", dp.worst);
    }
}
