//! Rewriting workloads behind `BENCH_rewrite.json`.
//!
//! Two families, mirroring the chase workloads in `e11_chase_engine`:
//!
//! * **Saturation fixtures** — the (theory, query, budget) triples pinned
//!   by `qr-rewrite`'s engine tests, plus a wider transitive-closure run
//!   whose BFS windows are broad enough for the pipelined engine to
//!   overlap generation with merging. Each fixture runs once in barrier
//!   mode (the reference wall time) and once pipelined (the reported run,
//!   whose [`qr_rewrite::RewriteStats`] counters are thread-invariant).
//! * **Marked-query runs** — `rewrite_td` on the paper's `φ_R^n` queries,
//!   reporting the frontier counters of the marked process.

use std::time::Instant;

use qr_core::marked::rewrite_td;
use qr_core::theories::phi_r_n;
use qr_exec::Executor;
use qr_rewrite::{rewrite_with_mode, RewriteBudget, SaturationMode};
use qr_syntax::{parse_query, parse_theory};

use crate::report::{MarkedCounters, RewriteRun};

/// The saturation fixtures: label, theory, query, budget. The first five
/// are exactly the engine's pinned-fixture suite; `tc-wide` scales the
/// transitive-closure run up until its windows hold dozens of queries.
pub fn fixtures() -> Vec<(&'static str, &'static str, &'static str, RewriteBudget)> {
    vec![
        (
            "t_a",
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
            RewriteBudget::default(),
        ),
        (
            "t_p",
            "e(X,Y) -> e(Y,Z).",
            "?(A) :- e(A,B), e(B,C).",
            RewriteBudget::default(),
        ),
        (
            "ex39",
            "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
            "?(A,D) :- e(A,B,C,D).",
            RewriteBudget::default(),
        ),
        (
            "guarded",
            "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
            "? :- p(A).",
            RewriteBudget::default(),
        ),
        (
            "tc-budget",
            "e(X,Y), e(Y,Z) -> e(X,Z).",
            "? :- e(a, b).",
            RewriteBudget {
                max_queries: 64,
                max_generated: 2_000,
                max_atoms: 12,
            },
        ),
        (
            "tc-wide",
            "e(X,Y), e(Y,Z) -> e(X,Z).",
            "? :- e(a, b).",
            RewriteBudget {
                max_queries: 256,
                max_generated: 8_000,
                max_atoms: 16,
            },
        ),
    ]
}

/// Runs one saturation fixture in both engine modes and reports the
/// pipelined run (counters are identical either way; the barrier wall is
/// kept as the overlap reference).
fn saturation_run(
    label: &str,
    theory_src: &str,
    query_src: &str,
    budget: RewriteBudget,
    exec: &Executor,
) -> RewriteRun {
    let theory = parse_theory(theory_src).expect("fixture theory parses");
    let query = parse_query(query_src).expect("fixture query parses");
    let t0 = Instant::now();
    let barrier = rewrite_with_mode(&theory, &query, budget, exec, SaturationMode::Barrier)
        .expect("no builtin bodies");
    let barrier_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let r = rewrite_with_mode(&theory, &query, budget, exec, SaturationMode::Pipelined)
        .expect("no builtin bodies");
    let wall_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(barrier.outcome, r.outcome, "{label}: modes disagree");
    RewriteRun {
        workload: label.to_owned(),
        engine: "saturation",
        threads: exec.threads(),
        wall_ms,
        barrier_wall_ms: Some(barrier_ms),
        outcome: format!("{:?}", r.outcome),
        disjuncts: r.ucq.len(),
        rs: r.rs(),
        generated: r.generated,
        oversized_discarded: r.oversized_discarded,
        depth: r.depth,
        stats: Some(r.stats),
        process: None,
    }
}

/// Runs `rewrite_td` on `φ_R^n` and reports the process counters.
fn marked_run(n: usize) -> RewriteRun {
    let query = phi_r_n(n);
    let t0 = Instant::now();
    let mr = rewrite_td(&query, 10_000_000).expect("process terminates");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    RewriteRun {
        workload: format!("T_d marked phi_R^{n}"),
        engine: "marked",
        threads: 1,
        wall_ms,
        barrier_wall_ms: None,
        outcome: "Complete".into(),
        disjuncts: mr.disjuncts.len(),
        rs: mr.max_disjunct_size(),
        generated: 0,
        oversized_discarded: 0,
        depth: 0,
        stats: None,
        process: Some(MarkedCounters {
            steps: mr.stats.steps,
            max_frontier: mr.stats.max_frontier,
            dropped: mr.stats.dropped,
            has_true: mr.has_true_disjunct,
        }),
    }
}

/// All rewrite runs for `BENCH_rewrite.json`: every saturation fixture on
/// `exec`'s pool, then the marked-query runs for `n = 1..=3`.
pub fn stats_runs(exec: &Executor) -> Vec<RewriteRun> {
    let mut out: Vec<RewriteRun> = fixtures()
        .into_iter()
        .map(|(label, t, q, budget)| saturation_run(label, t, q, budget, exec))
        .collect();
    out.extend((1..=3).map(marked_run));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cheap fixtures only (debug-mode friendly): counters must be
    /// identical across pool widths, and the run's totals must reconcile
    /// with the returned rewriting.
    #[test]
    fn counters_thread_invariant_on_cheap_fixtures() {
        for (label, t, q, budget) in fixtures().into_iter().take(4) {
            let seq = saturation_run(label, t, q, budget, &Executor::sequential());
            let par = saturation_run(label, t, q, budget, &Executor::with_threads(3));
            assert_eq!(seq.outcome, par.outcome, "{label}");
            assert_eq!(seq.disjuncts, par.disjuncts, "{label}");
            assert_eq!(seq.generated, par.generated, "{label}");
            let (ss, ps) = (seq.stats.unwrap(), par.stats.unwrap());
            assert_eq!(ss.windows.len(), ps.windows.len(), "{label}");
            for (a, b) in ss.windows.iter().zip(&ps.windows) {
                assert_eq!(
                    (a.window, a.items, a.merged, a.generated, a.accepted, a.kept),
                    (b.window, b.items, b.merged, b.generated, b.accepted, b.kept),
                    "{label}: window counters"
                );
            }
            assert_eq!(ss.generated(), seq.generated, "{label}: totals reconcile");
        }
    }

    #[test]
    fn marked_run_reports_process_counters() {
        let r = marked_run(1);
        assert_eq!(r.engine, "marked");
        assert!(r.disjuncts > 0);
        let p = r.process.unwrap();
        assert!(p.steps > 0);
        assert!(p.max_frontier > 0);
    }
}
