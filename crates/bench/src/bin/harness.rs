//! Prints every experiment table of DESIGN.md (E1-E12), streaming each as
//! it completes.
//!
//! Usage: `cargo run -p qr-bench --release --bin harness [--json] [e01 e07 ...]`
//!
//! With no experiment arguments all experiments run in order. With
//! `--json`, per-experiment wall times plus the chase engine's per-round
//! counters (the E11 workloads re-run under [`qr_chase::ChaseStats`]) are
//! written to `BENCH_chase.json` in the current directory.

use qr_bench::experiments;
use qr_bench::report::{self, ExperimentTiming};

fn main() {
    let mut filters: Vec<String> = std::env::args()
        .skip(1)
        .map(|s| s.to_ascii_lowercase())
        .collect();
    let json = filters.iter().any(|f| f == "--json");
    filters.retain(|f| f != "--json");

    let mut timings: Vec<ExperimentTiming> = Vec::new();
    for (id, build) in experiments::all() {
        if !filters.is_empty() && !filters.iter().any(|f| f == id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = build();
        let wall = t0.elapsed();
        println!("{table}   [{id} total {wall:?}]\n");
        timings.push(ExperimentTiming {
            id: id.to_owned(),
            wall_ms: wall.as_secs_f64() * 1e3,
        });
    }

    if json {
        let runs = experiments::e11_chase_engine::stats_runs();
        let rendered = report::render_json(&timings, &runs);
        let path = "BENCH_chase.json";
        match std::fs::write(path, rendered) {
            Ok(()) => println!("wrote {path} ({} chase runs)", runs.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
