//! Property tests: renderings of randomly generated theories, queries and
//! instances re-parse to structurally equal objects.

use qr_syntax::{parse_instance, parse_query, parse_theory};
use qr_testkit::{check, Rng};

/// A random predicate name (lowercase), suffixed with its arity so random
/// atoms never clash on arity.
fn atom(rng: &mut Rng) -> String {
    let pred = rng.string(b"abcdefgh", 1, 4);
    let nargs = rng.range(1, 4);
    let vars: Vec<String> = (0..nargs).map(|_| var_name(rng)).collect();
    format!("{pred}_{}({})", vars.len(), vars.join(","))
}

fn var_name(rng: &mut Rng) -> String {
    let head = *rng.pick(b"ABCDE") as char;
    if rng.bool() {
        format!("{head}{}", rng.below(10))
    } else {
        head.to_string()
    }
}

#[test]
fn theory_round_trip() {
    check("theory_round_trip", 64, |rng| {
        let nrules = rng.range(1, 5);
        let mut src = String::new();
        for _ in 0..nrules {
            let body: Vec<String> = (0..rng.range(1, 4)).map(|_| atom(rng)).collect();
            let head: Vec<String> = (0..rng.range(1, 3)).map(|_| atom(rng)).collect();
            src.push_str(&format!("{} -> {}.\n", body.join(", "), head.join(", ")));
        }
        let theory = parse_theory(&src).expect("arity-tagged random rules parse");
        let rendered = theory.render();
        let theory2 = parse_theory(&rendered).expect("rendering must re-parse");
        assert_eq!(theory.len(), theory2.len());
        for (a, b) in theory.rules().iter().zip(theory2.rules()) {
            assert_eq!(a.body().len(), b.body().len());
            assert_eq!(a.head().len(), b.head().len());
            assert_eq!(a.frontier().len(), b.frontier().len());
            assert_eq!(a.existential_vars().len(), b.existential_vars().len());
        }
    });
}

#[test]
fn query_round_trip() {
    check("query_round_trip", 64, |rng| {
        let atoms: Vec<String> = (0..rng.range(1, 5)).map(|_| atom(rng)).collect();
        let src = format!("? :- {}.", atoms.join(", "));
        let q = parse_query(&src).expect("arity-tagged random atoms parse");
        let rendered = format!("{}.", q.render());
        let q2 = parse_query(&rendered).expect("rendering must re-parse");
        assert_eq!(q.canonical(), q2.canonical());
    });
}

#[test]
fn instance_round_trip() {
    check("instance_round_trip", 64, |rng| {
        let nfacts = rng.range(1, 8);
        let mut src = String::new();
        for _ in 0..nfacts {
            let pred = rng.string(b"abcdefgh", 1, 4);
            let nargs = rng.range(1, 4);
            let args: Vec<String> = (0..nargs)
                .map(|_| {
                    let head = *rng.pick(b"abcdefghijklmnopqrstuvwxyz") as char;
                    if rng.bool() {
                        format!("{head}{}", rng.below(10))
                    } else {
                        head.to_string()
                    }
                })
                .collect();
            src.push_str(&format!("{pred}_{}({}).\n", args.len(), args.join(",")));
        }
        let inst = parse_instance(&src).expect("arity-tagged random facts parse");
        // Instances render via Display as `{fact, fact}`; re-render fact by
        // fact instead.
        let rendered: String = inst.iter().map(|f| format!("{f}.\n")).collect();
        let inst2 = parse_instance(&rendered).expect("rendering must re-parse");
        assert_eq!(inst, inst2);
    });
}

#[test]
fn parser_never_panics() {
    // Printable-ASCII fuzzing: the parsers must reject garbage gracefully.
    let printable: Vec<u8> = (b' '..=b'~').collect();
    check("parser_never_panics", 256, |rng| {
        let src = rng.string(&printable, 0, 61);
        let _ = parse_theory(&src);
        let _ = parse_query(&src);
        let _ = parse_instance(&src);
    });
}
